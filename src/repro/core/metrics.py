"""Small statistics helpers shared by tests and the evaluation harness."""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

__all__ = ["proportion", "mean", "sample_sd", "rolling_mean", "wilson_interval"]


def proportion(successes: int, trials: int) -> float:
    """successes / trials, refusing the undefined 0/0 case."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes={successes} outside [0, {trials}]")
    return successes / trials


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (non-empty input required)."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def sample_sd(values: Sequence[float]) -> float:
    """Unbiased sample standard deviation (0.0 for n < 2)."""
    n = len(values)
    if n < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (n - 1))


def rolling_mean(values: Sequence[float], window: int) -> List[float]:
    """Trailing rolling mean (shorter prefix windows at the start)."""
    if window <= 0:
        raise ValueError("window must be positive")
    out: List[float] = []
    for index in range(len(values)):
        chunk = values[max(0, index - window + 1) : index + 1]
        out.append(sum(chunk) / len(chunk))
    return out


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Used when reporting extract/predict precision so small-sample
    rows (the paper's 30-40 samples per step) carry honest error bars.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    p = successes / trials
    denominator = 1 + z**2 / trials
    centre = (p + z**2 / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(p * (1 - p) / trials + z**2 / (4 * trials**2))
        / denominator
    )
    low = max(0.0, centre - margin)
    high = min(1.0, centre + margin)
    # At the boundaries the exact bound coincides with p; floating
    # point may land an epsilon on the wrong side of it.
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 1.0
    return (low, high)
