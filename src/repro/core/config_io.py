"""Configuration persistence: CoReDAConfig <-> JSON.

Care-home deployments tune stall timeouts, escalation and reward
shaping per resident; those settings belong in version-controlled
files, not code.  The format is a plain nested JSON object mirroring
the dataclass structure, with unknown keys rejected loudly (a typo'd
setting silently ignored is a mis-deployment).
"""

from __future__ import annotations

import json
from dataclasses import asdict, fields
from pathlib import Path
from typing import Any, Dict, Type, Union

from repro.core.config import (
    CoReDAConfig,
    PlanningConfig,
    RadioConfig,
    RemindingConfig,
    SensingConfig,
    SimConfig,
)
from repro.core.errors import ConfigurationError

__all__ = ["config_to_dict", "config_from_dict", "save_config", "load_config"]

_SECTIONS: Dict[str, Type] = {
    "sim": SimConfig,
    "sensing": SensingConfig,
    "radio": RadioConfig,
    "planning": PlanningConfig,
    "reminding": RemindingConfig,
}


def config_to_dict(config: CoReDAConfig) -> Dict[str, Any]:
    """A plain nested dict of ``config`` (JSON-ready)."""
    return asdict(config)


def config_from_dict(data: Dict[str, Any]) -> CoReDAConfig:
    """Rebuild a :class:`CoReDAConfig` from :func:`config_to_dict` output.

    Sections and keys may be omitted (defaults apply); unknown
    sections or keys raise :class:`ConfigurationError`.
    """
    known_top = set(_SECTIONS) | {"seed"}
    unknown = set(data) - known_top
    if unknown:
        raise ConfigurationError(f"unknown configuration keys: {sorted(unknown)}")
    kwargs: Dict[str, Any] = {}
    if "seed" in data:
        kwargs["seed"] = int(data["seed"])
    for section, cls in _SECTIONS.items():
        if section not in data:
            continue
        section_data = data[section]
        if not isinstance(section_data, dict):
            raise ConfigurationError(
                f"section {section!r} must be an object, got "
                f"{type(section_data).__name__}"
            )
        valid_keys = {f.name for f in fields(cls)}
        bad = set(section_data) - valid_keys
        if bad:
            raise ConfigurationError(
                f"unknown keys in section {section!r}: {sorted(bad)}"
            )
        kwargs[section] = cls(**section_data)
    return CoReDAConfig(**kwargs)


def save_config(config: CoReDAConfig, path: Union[str, Path]) -> None:
    """Write ``config`` to ``path`` as JSON."""
    Path(path).write_text(json.dumps(config_to_dict(config), indent=2))


def load_config(path: Union[str, Path]) -> CoReDAConfig:
    """Read a configuration previously written by :func:`save_config`.

    Hand-edited files get full validation: structural errors raise
    :class:`ConfigurationError`; value errors raise through the
    dataclasses' own ``__post_init__`` checks.
    """
    return config_from_dict(json.loads(Path(path).read_text()))
