"""Configuration dataclasses for every CoReDA subsystem.

Defaults are taken from the paper wherever it states a number:

* 10 Hz sampling, usage declared when 3 of 10 samples surpass the
  threshold (section 2.1);
* rewards 1000 (terminal), 100 (minimal prompt), 50 (specific prompt)
  (section 2.2);
* 30 s stall timeout, which the paper notes "should be determined from
  the statistical data of how long a user will use this tool" -- we
  implement both the fixed value and the statistical rule;
* convergence criteria 95% and 98% (section 3.2).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.core.errors import ConfigurationError

__all__ = [
    "SimConfig",
    "SensingConfig",
    "RadioConfig",
    "PlanningConfig",
    "RemindingConfig",
    "CoReDAConfig",
    "default_infer_backend",
    "default_q_backend",
]


def _default_kernel_backend() -> str:
    """Process-wide default kernel backend, overridable via environment.

    The backends run byte-identically (see docs/architecture.md), so
    the knob only selects a speed profile; the env hook lets benches
    A/B the full pipeline without threading a parameter through every
    construction site (the ``REPRO_Q_BACKEND`` pattern).
    """
    return os.environ.get("REPRO_KERNEL_BACKEND", "calendar")


@dataclass(frozen=True)
class SimConfig:
    """Discrete-event kernel parameters (no paper analogue: pure speed)."""

    #: Event-queue backend: "calendar" (bucketed timing wheel) or
    #: "heap" (the reference binary heap).  Byte-identical outputs.
    kernel_backend: str = field(default_factory=_default_kernel_backend)
    #: Calendar-queue bucket width in simulated seconds.  Tuned for
    #: the 10 Hz sampling traffic (one block event per node-second
    #: plus millisecond radio offsets); ignored by the heap backend.
    bucket_width: float = 0.5

    def __post_init__(self) -> None:
        if self.kernel_backend not in ("heap", "calendar"):
            raise ConfigurationError(
                "kernel_backend must be 'heap' or 'calendar', got "
                f"{self.kernel_backend!r}"
            )
        if self.bucket_width <= 0:
            raise ConfigurationError("bucket_width must be positive")


@dataclass(frozen=True)
class SensingConfig:
    """Sensing-subsystem parameters (paper section 2.1)."""

    #: Samples per second taken by each node ("10 times in one second").
    sampling_hz: float = 10.0
    #: Window length for the usage rule (the "10" of 3-of-10).
    window_size: int = 10
    #: Samples that must surpass the threshold ("three of these 10").
    threshold_count: int = 3
    #: Signal magnitude a sample must exceed to count as activity.
    usage_threshold: float = 1.0
    #: Seconds without any tool usage before StepID 0 (idle) is emitted.
    idle_timeout: float = 30.0
    #: Refractory period after a detection before the same node may
    #: report again (keeps one physical use = one usage event).
    refractory_period: float = 2.0
    #: Samples drawn per kernel event by node firmware.  1 = the
    #: reference per-sample loop; >1 = the block fast path, which is
    #: byte-identical to the reference (see docs/architecture.md) but
    #: runs the sensing-bound experiment cells several times faster.
    batch_samples: int = 10

    def __post_init__(self) -> None:
        if self.sampling_hz <= 0:
            raise ConfigurationError("sampling_hz must be positive")
        if self.batch_samples < 1:
            raise ConfigurationError("batch_samples must be >= 1")
        if not 1 <= self.threshold_count <= self.window_size:
            raise ConfigurationError(
                "threshold_count must be within [1, window_size]; got "
                f"{self.threshold_count} of {self.window_size}"
            )
        if self.idle_timeout <= 0:
            raise ConfigurationError("idle_timeout must be positive")
        if self.refractory_period < 0:
            raise ConfigurationError("refractory_period must be >= 0")


@dataclass(frozen=True)
class RadioConfig:
    """CC1000-like radio model parameters."""

    #: Probability an individual frame is lost in the air.
    loss_probability: float = 0.02
    #: One-way latency, seconds (sub-millisecond on the real CC1000;
    #: kept configurable for stress benches).
    latency: float = 0.005
    #: Link-layer retransmissions before a frame is dropped for good.
    max_retries: int = 3
    #: Delay between retransmissions, seconds.
    retry_interval: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability < 1.0:
            raise ConfigurationError("loss_probability must be in [0, 1)")
        if self.latency < 0:
            raise ConfigurationError("latency must be >= 0")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")


def default_q_backend() -> str:
    """Process-wide default Q backend, overridable via environment.

    The backends train byte-identically (see docs/architecture.md),
    so the knob only selects a speed profile; the env hook lets the
    benchmark A/B the full experiment pipeline without threading a
    parameter through every plan builder.
    """
    return os.environ.get("REPRO_Q_BACKEND", "dense")


def default_infer_backend() -> str:
    """Process-wide default inference backend ("batched" | "scalar").

    Selects how deployed predictors and the ADL recognizer serve
    lookups: "batched" precomputes greedy-policy tables / stacks HMM
    forward recursions, "scalar" is the per-call reference path.  The
    backends are byte-identical (see docs/architecture.md); the env
    hook (``REPRO_INFER_BACKEND``) lets benches A/B whole pipelines,
    following the ``REPRO_Q_BACKEND`` pattern.
    """
    return os.environ.get("REPRO_INFER_BACKEND", "batched")


@dataclass(frozen=True)
class PlanningConfig:
    """TD(λ) Q-learning parameters (paper section 2.2).

    The paper's reward statement is conditioned on the prompt being
    *followed into the correct next step*: a prompt whose tool does
    not match the observed next step earns ``wrong_prompt_reward``
    (default 0), otherwise the policy could never distinguish correct
    from incorrect guidance.
    """

    #: Learning rate α.
    learning_rate: float = 0.2
    #: Discount factor (the paper's "converge factor" β).
    discount: float = 0.9
    #: Eligibility-trace decay λ of TD(λ).
    trace_decay: float = 0.7
    #: ε of the ε-greedy behaviour policy during training.
    epsilon: float = 0.2
    #: Multiplicative ε decay applied per training iteration.  The
    #: default lands the paper's Figure 4 numbers: the behaviour
    #: accuracy crosses 95% near iteration 50 and 98% near 90.
    epsilon_decay: float = 0.978
    #: Reward for completing the ADL (terminal step reached).
    terminal_reward: float = 1000.0
    #: Reward for a correct *minimal* prompt on an intermediate step.
    minimal_reward: float = 100.0
    #: Reward for a correct *specific* prompt on an intermediate step.
    specific_reward: float = 50.0
    #: Reward when the prompted tool does not match the next step.
    wrong_prompt_reward: float = 0.0
    #: Default convergence criterion (fraction of correct predictions).
    convergence_criterion: float = 0.95
    #: Consecutive iterations at/above the criterion to declare converged.
    convergence_patience: int = 3
    #: Optimistic initial Q value.  Initialising at the terminal
    #: reward makes untried prompts look as good as the best known
    #: one, so the greedy policy systematically rules actions out
    #: instead of waiting for ε-exploration to stumble on the correct
    #: tool (8 actions × rare ε hits would need far more than the
    #: paper's 120 samples).
    initial_q: float = 1000.0
    #: Q-table storage backend: "dense" (indexed NumPy arrays) or
    #: "sparse" (the reference dict implementation).  Both produce
    #: bit-identical training runs and share cache entries; dense is
    #: several times faster on the training-bound experiment cells.
    q_backend: str = field(default_factory=default_q_backend)
    #: Inference backend for deployed prediction and recognition:
    #: "batched" (memoized greedy-policy tables, stacked HMM
    #: forwards) or "scalar" (per-call reference lookups).  Both are
    #: byte-identical and share cache entries; batched is several
    #: times faster on prediction/recognition-dominated workloads.
    infer_backend: str = field(default_factory=default_infer_backend)

    def __post_init__(self) -> None:
        if not 0.0 < self.learning_rate <= 1.0:
            raise ConfigurationError("learning_rate must be in (0, 1]")
        if not 0.0 <= self.discount < 1.0:
            raise ConfigurationError("discount must be in [0, 1)")
        if not 0.0 <= self.trace_decay <= 1.0:
            raise ConfigurationError("trace_decay must be in [0, 1]")
        if not 0.0 <= self.epsilon <= 1.0:
            raise ConfigurationError("epsilon must be in [0, 1]")
        if not 0.0 < self.convergence_criterion <= 1.0:
            raise ConfigurationError("convergence_criterion must be in (0, 1]")
        if self.convergence_patience < 1:
            raise ConfigurationError("convergence_patience must be >= 1")
        if self.minimal_reward < self.specific_reward:
            raise ConfigurationError(
                "minimal_reward must be >= specific_reward (the paper "
                "rewards minimal prompting more to promote independence)"
            )
        if self.q_backend not in ("dense", "sparse"):
            raise ConfigurationError(
                f"q_backend must be 'dense' or 'sparse', got {self.q_backend!r}"
            )
        if self.infer_backend not in ("batched", "scalar"):
            raise ConfigurationError(
                "infer_backend must be 'batched' or 'scalar', got "
                f"{self.infer_backend!r}"
            )


@dataclass(frozen=True)
class RemindingConfig:
    """Reminding-subsystem parameters (paper section 2.3)."""

    #: Fallback stall timeout in seconds (Figure 1 uses 30 s).
    stall_timeout: float = 30.0
    #: If True, the stall timeout for a step is derived from the
    #: statistics of how long the user usually takes, as the paper's
    #: footnote 1 prescribes: mean + ``stall_sd_factor`` * sd.
    statistical_timeout: bool = True
    #: Standard deviations above the mean step duration before a
    #: stall prompt fires (only with ``statistical_timeout``).
    stall_sd_factor: float = 3.0
    #: LED blink counts: "minimal gives ... less blinks".
    minimal_blinks: int = 3
    #: "specific gives ... more blinks".
    specific_blinks: int = 8
    #: Escalate minimal -> specific after this many unanswered
    #: reminders for the same step.
    escalate_after: int = 2
    #: Hard cap on reminders per step before giving up (a caregiver
    #: would be alerted in a deployed system).
    max_reminders_per_step: int = 5
    #: Whether to praise the user after a correctly followed prompt.
    praise_enabled: bool = True
    #: Name used in specific prompts ("Mr. Kim, use the ...").
    user_title: str = "Mr. Tanaka"

    def __post_init__(self) -> None:
        if self.stall_timeout <= 0:
            raise ConfigurationError("stall_timeout must be positive")
        if self.minimal_blinks <= 0 or self.specific_blinks <= 0:
            raise ConfigurationError("blink counts must be positive")
        if self.minimal_blinks >= self.specific_blinks:
            raise ConfigurationError(
                "minimal prompts must blink less than specific prompts"
            )
        if self.escalate_after < 1:
            raise ConfigurationError("escalate_after must be >= 1")
        if self.max_reminders_per_step < 1:
            raise ConfigurationError("max_reminders_per_step must be >= 1")


@dataclass(frozen=True)
class CoReDAConfig:
    """Top-level configuration aggregating all subsystems."""

    sim: SimConfig = field(default_factory=SimConfig)
    sensing: SensingConfig = field(default_factory=SensingConfig)
    radio: RadioConfig = field(default_factory=RadioConfig)
    planning: PlanningConfig = field(default_factory=PlanningConfig)
    reminding: RemindingConfig = field(default_factory=RemindingConfig)
    #: Master seed for all random streams.
    seed: int = 0

    @classmethod
    def elderly_friendly(cls, user_title: str = "Mr. Tanaka") -> "CoReDAConfig":
        """Profile for severe dementia (paper future-work item 3).

        Longer stall windows, specific prompts escalate immediately,
        and more repetitions before giving up.
        """
        base = cls()
        return replace(
            base,
            reminding=replace(
                base.reminding,
                stall_timeout=45.0,
                stall_sd_factor=4.0,
                escalate_after=1,
                max_reminders_per_step=8,
                user_title=user_title,
            ),
        )

    def with_seed(self, seed: int) -> "CoReDAConfig":
        """A copy of this configuration using a different master seed."""
        return replace(self, seed=seed)
