"""CoReDA core: data model, events, bus, configuration, orchestrator."""

from repro.core.adl import (
    ADL,
    ADLStep,
    IDLE_STEP_ID,
    ReminderLevel,
    Routine,
    SensorType,
    Tool,
)
from repro.core.bus import EventBus
from repro.core.config import (
    CoReDAConfig,
    PlanningConfig,
    RadioConfig,
    RemindingConfig,
    SensingConfig,
)
from repro.core.errors import (
    ConfigurationError,
    CoReDAError,
    NotConvergedError,
    RoutineError,
    UnknownADLError,
    UnknownStepError,
    UnknownToolError,
)
from repro.core.events import (
    DisplayEvent,
    EpisodeCompletedEvent,
    LEDCommandEvent,
    PraiseEvent,
    PromptRequestEvent,
    ReminderEvent,
    SensorFrameEvent,
    StepEvent,
    ToolUsageEvent,
    TriggerReason,
)
from repro.core.home import CareHome, DayResult, ScheduledActivity
from repro.core.session import EpisodeRecord, SessionLog
from repro.core.system import CoReDA

__all__ = [
    "ADL",
    "ADLStep",
    "CareHome",
    "CoReDA",
    "CoReDAConfig",
    "DayResult",
    "ScheduledActivity",
    "CoReDAError",
    "ConfigurationError",
    "DisplayEvent",
    "EpisodeCompletedEvent",
    "EpisodeRecord",
    "EventBus",
    "IDLE_STEP_ID",
    "LEDCommandEvent",
    "NotConvergedError",
    "PlanningConfig",
    "PraiseEvent",
    "PromptRequestEvent",
    "RadioConfig",
    "ReminderEvent",
    "ReminderLevel",
    "RemindingConfig",
    "Routine",
    "RoutineError",
    "SensingConfig",
    "SensorFrameEvent",
    "SensorType",
    "SessionLog",
    "StepEvent",
    "Tool",
    "ToolUsageEvent",
    "TriggerReason",
    "UnknownADLError",
    "UnknownStepError",
    "UnknownToolError",
]
