"""Reminder escalation policy (elderly-friendly design).

The learned policy chooses the *preferred* level (MINIMAL wherever it
suffices -- that is what the 100-vs-50 reward gap teaches).  A real
deployment must still cope with a user who does not react: repeated
unanswered reminders for the same expectation escalate to SPECIFIC,
and after a hard cap the system gives up and flags a caregiver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.adl import ReminderLevel
from repro.core.config import RemindingConfig

__all__ = ["EscalationDecision", "EscalationPolicy"]


@dataclass(frozen=True)
class EscalationDecision:
    """What to do with one prompt request."""

    level: ReminderLevel
    attempt: int
    give_up: bool


class EscalationPolicy:
    """Tracks attempts per expectation target and escalates.

    The attempt counter resets whenever the expected tool changes
    (progress was made) via :meth:`reset`.
    """

    def __init__(self, config: RemindingConfig) -> None:
        self.config = config
        self._target: Optional[int] = None
        self._attempts = 0

    def decide(
        self, tool_id: int, requested_level: ReminderLevel
    ) -> EscalationDecision:
        """Decide the effective level for a prompt targeting ``tool_id``."""
        if tool_id != self._target:
            self._target = tool_id
            self._attempts = 0
        self._attempts += 1
        if self._attempts > self.config.max_reminders_per_step:
            return EscalationDecision(
                level=ReminderLevel.SPECIFIC, attempt=self._attempts, give_up=True
            )
        level = requested_level
        if self._attempts > self.config.escalate_after:
            level = ReminderLevel.SPECIFIC
        return EscalationDecision(level=level, attempt=self._attempts, give_up=False)

    def reset(self) -> None:
        """Forget the current target (user made progress)."""
        self._target = None
        self._attempts = 0

    @property
    def attempts(self) -> int:
        """Attempts against the current target."""
        return self._attempts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EscalationPolicy(target={self._target}, attempts={self._attempts})"
