"""The care-home display: text messages and tool pictures.

The paper shows "Text message and tool picture ... on a display" in
front of the user.  The simulated display records everything it shows
(the Figure 1 harness replays this history) and republishes each
screen as a :class:`~repro.core.events.DisplayEvent`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.bus import EventBus
from repro.core.events import DisplayEvent
from repro.sim.kernel import Simulator
from repro.sim.tracing import TraceRecorder

__all__ = ["Display"]


class Display:
    """A write-only screen with full show-history."""

    def __init__(
        self,
        sim: Simulator,
        bus: Optional[EventBus] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.sim = sim
        self.bus = bus
        self._trace = trace
        self.history: List[DisplayEvent] = []

    def show(self, text: str, picture: str = "") -> DisplayEvent:
        """Render ``text`` (and optionally a tool ``picture``)."""
        event = DisplayEvent(time=self.sim.now, text=text, picture=picture)
        self.history.append(event)
        if self._trace is not None:
            self._trace.emit(self.sim.now, "display.show", text=text, picture=picture)
        if self.bus is not None:
            self.bus.publish(event)
        return event

    @property
    def current(self) -> Optional[DisplayEvent]:
        """What the screen shows right now (None before first use)."""
        if not self.history:
            return None
        return self.history[-1]

    def __len__(self) -> int:
        return len(self.history)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Display(shown={len(self.history)})"
