"""The reminding subsystem (paper section 2.3, Figure 2 right box).

Receives prompt requests from the planning subsystem and informs the
user by the paper's three methods: text message, tool picture, LED
blinking.  For a wrong-tool situation the target tool's green LED and
the offending tool's red LED both blink, exactly as in Figure 1's
13-second mark ("Red LED on teacup / Green LED on pot").
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.adl import ADL
from repro.core.bus import EventBus
from repro.core.config import RemindingConfig
from repro.core.events import (
    PraiseEvent,
    PromptRequestEvent,
    ReminderEvent,
    TriggerReason,
)
from repro.reminding.display import Display
from repro.reminding.escalation import EscalationPolicy
from repro.reminding.led import LedController
from repro.reminding.prompts import render_message
from repro.sim.kernel import Simulator
from repro.sim.tracing import TraceRecorder

__all__ = ["RemindingSubsystem"]


class RemindingSubsystem:
    """Turns prompt requests into display screens and LED blinks."""

    def __init__(
        self,
        sim: Simulator,
        adl: ADL,
        bus: EventBus,
        config: RemindingConfig,
        display: Display,
        leds: Optional[LedController] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.sim = sim
        self.adl = adl
        self.bus = bus
        self.config = config
        self.display = display
        self.leds = leds
        self._trace = trace
        self.escalation = EscalationPolicy(config)
        self.reminders: List[ReminderEvent] = []
        self.caregiver_alerts = 0
        self.praises_rendered = 0
        bus.subscribe(PromptRequestEvent, self.on_prompt_request)
        bus.subscribe(PraiseEvent, self.on_praise)

    def on_prompt_request(self, request: PromptRequestEvent) -> None:
        """Deliver one reminder (or give up and alert a caregiver)."""
        decision = self.escalation.decide(request.tool_id, request.level)
        if decision.give_up:
            self.caregiver_alerts += 1
            if self._trace is not None:
                self._trace.emit(
                    self.sim.now,
                    "reminder.gave_up",
                    tool_id=request.tool_id,
                    attempts=decision.attempt,
                )
            return
        tool = self.adl.tool(request.tool_id)
        message = render_message(decision.level, tool, self.config.user_title)
        self.display.show(message, picture=tool.picture or tool.name)
        if self.leds is not None:
            self.leds.indicate_target(tool.tool_id, decision.level)
            if (
                request.reason is TriggerReason.WRONG_TOOL
                and request.wrong_tool_id is not None
            ):
                self.leds.indicate_wrong_use(request.wrong_tool_id, decision.level)
        reminder = ReminderEvent(
            time=self.sim.now,
            tool_id=request.tool_id,
            level=decision.level,
            reason=request.reason,
            message=message,
            picture=tool.picture or tool.name,
            wrong_tool_id=request.wrong_tool_id,
        )
        self.reminders.append(reminder)
        if self._trace is not None:
            self._trace.emit(
                self.sim.now,
                "reminder.prompt",
                tool_id=request.tool_id,
                level=decision.level.value,
                reason=request.reason.name,
                attempt=decision.attempt,
                wrong_tool_id=request.wrong_tool_id,
            )
        self.bus.publish(reminder)

    def on_praise(self, praise: PraiseEvent) -> None:
        """Render praise and reset the escalation counter."""
        if not self.config.praise_enabled:
            return
        self.praises_rendered += 1
        self.display.show(praise.message)
        self.escalation.reset()
        if self._trace is not None:
            self._trace.emit(self.sim.now, "reminder.praise", step_id=praise.step_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RemindingSubsystem({self.adl.name!r}, "
            f"reminders={len(self.reminders)})"
        )
