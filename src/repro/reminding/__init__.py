"""The reminding subsystem: text, picture and LED prompts."""

from repro.reminding.display import Display
from repro.reminding.escalation import EscalationDecision, EscalationPolicy
from repro.reminding.led import LedController
from repro.reminding.prompts import render_message, render_praise
from repro.reminding.subsystem import RemindingSubsystem

__all__ = [
    "Display",
    "EscalationDecision",
    "EscalationPolicy",
    "LedController",
    "RemindingSubsystem",
    "render_message",
    "render_praise",
]
