"""Prompt message rendering (paper section 2.3 / Figure 1).

    "minimal gives short message (e.g., 'use tea-cup') and less
    blinks; specific gives long message (e.g., 'Mr. Kim, use the black
    tea-box in front of you.') and more blinks."
"""

from __future__ import annotations

from repro.core.adl import ReminderLevel, Tool

__all__ = ["render_message", "render_praise"]

#: Default praise line, straight from Figure 1.
PRAISE_MESSAGE = "Excellent!"


def render_message(level: ReminderLevel, tool: Tool, user_title: str) -> str:
    """The display text for a prompt at the given level."""
    if level is ReminderLevel.MINIMAL:
        return f"Please use {tool.name}."
    return f"{user_title}, use the {tool.name} in front of you."


def render_praise() -> str:
    """The praise line shown after a correctly followed prompt."""
    return PRAISE_MESSAGE
