"""LED signalling through the sensor network (paper section 2.3).

    "The green LED indicates the tool should be used.  The red LED
    indicates the tool is incorrectly used."

Blink commands travel down the same radio as uplink frames; the
controller therefore goes through the base station rather than poking
node objects directly, so a lossy link affects guidance too (one of
the ablation benches measures exactly that).
"""

from __future__ import annotations

from typing import Optional

from repro.core.adl import ReminderLevel
from repro.core.bus import EventBus
from repro.core.config import RemindingConfig
from repro.core.events import LEDCommandEvent
from repro.sensors.network import BaseStation
from repro.sim.kernel import Simulator

__all__ = ["LedController"]


class LedController:
    """Issues green/red blink commands at level-appropriate counts."""

    def __init__(
        self,
        sim: Simulator,
        base_station: BaseStation,
        config: RemindingConfig,
        bus: Optional[EventBus] = None,
    ) -> None:
        self.sim = sim
        self.base_station = base_station
        self.config = config
        self.bus = bus
        self.commands_sent = 0

    def blinks_for(self, level: ReminderLevel) -> int:
        """Blink count for a reminding level."""
        if level is ReminderLevel.MINIMAL:
            return self.config.minimal_blinks
        return self.config.specific_blinks

    def indicate_target(self, node_uid: int, level: ReminderLevel) -> None:
        """Green-blink the tool that should be used."""
        self._send(node_uid, "green", self.blinks_for(level))

    def indicate_wrong_use(self, node_uid: int, level: ReminderLevel) -> None:
        """Red-blink the tool that is being incorrectly used."""
        self._send(node_uid, "red", self.blinks_for(level))

    def _send(self, node_uid: int, color: str, blinks: int) -> None:
        self.base_station.send_led_command(node_uid, color, blinks)
        self.commands_sent += 1
        if self.bus is not None:
            self.bus.publish(
                LEDCommandEvent(
                    time=self.sim.now, node_uid=node_uid, color=color, blinks=blinks
                )
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LedController(commands={self.commands_sent})"
