"""Unit tests for the resident simulator components."""

import numpy as np
import pytest

from repro.core.adl import ReminderLevel
from repro.resident.compliance import ComplianceModel
from repro.resident.dementia import DementiaProfile, ErrorKind, ScriptedError
from repro.resident.population import generate_population
from repro.resident.routines import (
    noisy_episodes,
    personalized_routine,
    training_episodes,
)
from repro.sim.random import RandomStreams


class TestDementiaProfile:
    def test_none_profile_never_errs(self, rng):
        profile = DementiaProfile.none()
        assert all(
            profile.draw_error(rng) == ErrorKind.NONE for _ in range(200)
        )

    def test_severity_scales_error_rate(self, rng):
        mild = DementiaProfile.from_severity(0.1)
        severe = DementiaProfile.from_severity(0.9)
        draws = 2000
        mild_errors = sum(
            mild.draw_error(rng) != ErrorKind.NONE for _ in range(draws)
        )
        severe_errors = sum(
            severe.draw_error(rng) != ErrorKind.NONE for _ in range(draws)
        )
        assert severe_errors > 3 * mild_errors

    def test_draw_covers_all_kinds(self, rng):
        profile = DementiaProfile(0.3, 0.3, 0.3)
        kinds = {profile.draw_error(rng) for _ in range(500)}
        assert kinds == {
            ErrorKind.NONE,
            ErrorKind.STALL,
            ErrorKind.WRONG_TOOL,
            ErrorKind.PERSEVERATE,
        }

    def test_probabilities_must_fit(self):
        with pytest.raises(ValueError):
            DementiaProfile(0.5, 0.4, 0.2)
        with pytest.raises(ValueError):
            DementiaProfile(-0.1, 0.0, 0.0)

    def test_severity_bounds(self):
        with pytest.raises(ValueError):
            DementiaProfile.from_severity(1.5)


class TestScriptedError:
    def test_wrong_tool_requires_target(self):
        with pytest.raises(ValueError):
            ScriptedError(ErrorKind.WRONG_TOOL)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ScriptedError("daydream")


class TestCompliance:
    def test_specific_at_least_as_effective(self, rng):
        model = ComplianceModel(minimal_response=0.5, specific_response=0.9)
        trials = 2000
        minimal = sum(
            model.responds(ReminderLevel.MINIMAL, rng) for _ in range(trials)
        )
        specific = sum(
            model.responds(ReminderLevel.SPECIFIC, rng) for _ in range(trials)
        )
        assert specific > minimal

    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            ComplianceModel(minimal_response=0.9, specific_response=0.5)

    def test_delay_floor(self, rng):
        model = ComplianceModel(delay_mean=1.0, delay_sd=5.0, delay_floor=0.5)
        assert all(model.response_delay(rng) >= 0.5 for _ in range(200))

    def test_perfect_always_responds(self, rng):
        model = ComplianceModel.perfect()
        assert all(
            model.responds(ReminderLevel.MINIMAL, rng) for _ in range(100)
        )


class TestRoutines:
    def test_personalized_keeps_endpoints(self, tea_adl, rng):
        for _ in range(50):
            routine = personalized_routine(tea_adl, rng, shuffle_probability=1.0)
            assert routine.first_step_id == tea_adl.step_ids[0]
            assert routine.terminal_step_id == tea_adl.terminal_step_id
            assert sorted(routine.step_ids) == sorted(tea_adl.step_ids)

    def test_zero_probability_is_canonical(self, tea_adl, rng):
        routine = personalized_routine(tea_adl, rng, shuffle_probability=0.0)
        assert list(routine.step_ids) == tea_adl.step_ids

    def test_training_episodes_clean_copies(self, tea_adl):
        routine = tea_adl.canonical_routine()
        episodes = training_episodes(routine, 5)
        assert len(episodes) == 5
        assert all(e == list(routine.step_ids) for e in episodes)
        episodes[0].append(99)  # mutating one must not affect others
        assert episodes[1] == list(routine.step_ids)

    def test_training_count_positive(self, tea_adl):
        with pytest.raises(ValueError):
            training_episodes(tea_adl.canonical_routine(), 0)

    def test_noisy_episodes_drop_steps(self, tea_adl, rng):
        routine = tea_adl.canonical_routine()
        episodes = noisy_episodes(routine, 200, rng, miss_probability=0.2)
        assert any(len(e) < len(routine) for e in episodes)
        # Every episode still ends at the terminal step.
        assert all(e[-1] == routine.terminal_step_id for e in episodes)

    def test_noisy_probability_bounds(self, tea_adl, rng):
        with pytest.raises(ValueError):
            noisy_episodes(tea_adl.canonical_routine(), 1, rng,
                           miss_probability=1.0)


class TestPopulation:
    def test_cohort_shape(self, tea_adl):
        cohort = generate_population(tea_adl, 25, RandomStreams(0))
        assert len(cohort) == 25
        assert all(72 <= p.age <= 91 for p in cohort)
        assert all(0.1 <= p.severity <= 0.8 for p in cohort)
        assert len({p.name for p in cohort}) == 25

    def test_routines_are_valid_permutations(self, tea_adl):
        cohort = generate_population(tea_adl, 20, RandomStreams(1))
        for profile in cohort:
            assert sorted(profile.routine.step_ids) == sorted(tea_adl.step_ids)

    def test_reproducible(self, tea_adl):
        a = generate_population(tea_adl, 5, RandomStreams(3))
        b = generate_population(tea_adl, 5, RandomStreams(3))
        assert [p.severity for p in a] == [p.severity for p in b]

    def test_count_positive(self, tea_adl):
        with pytest.raises(ValueError):
            generate_population(tea_adl, 0, RandomStreams(0))

    def test_inverted_severity_range_rejected(self, tea_adl):
        with pytest.raises(ValueError, match="max_severity"):
            generate_population(tea_adl, 5, RandomStreams(0),
                                max_severity=0.05)

    def test_severity_above_one_rejected(self, tea_adl):
        with pytest.raises(ValueError, match="max_severity"):
            generate_population(tea_adl, 5, RandomStreams(0),
                                max_severity=1.5)

    def test_inverted_age_range_rejected(self, tea_adl):
        with pytest.raises(ValueError, match="min_age"):
            generate_population(tea_adl, 5, RandomStreams(0),
                                min_age=90, max_age=80)
