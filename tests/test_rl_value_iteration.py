"""Unit tests for value iteration and policy extraction."""

import pytest

from repro.rl.mdp import TabularMDP
from repro.rl.value_iteration import (
    extract_policy,
    q_values,
    value_iteration,
)


def chain_mdp():
    """s1 -> s2 -> goal with +10 at the end; 'stay' loops with 0."""
    mdp = TabularMDP()
    mdp.add_transition("s1", "go", "s2", reward=0.0)
    mdp.add_transition("s1", "stay", "s1", reward=0.0)
    mdp.add_transition("s2", "go", "goal", reward=10.0)
    mdp.add_transition("s2", "stay", "s2", reward=0.0)
    mdp.mark_terminal("goal")
    return mdp


class TestValueIteration:
    def test_chain_values(self):
        result = value_iteration(chain_mdp(), discount=0.9, tolerance=1e-10)
        assert result.values["s2"] == pytest.approx(10.0)
        assert result.values["s1"] == pytest.approx(9.0)
        assert result.values["goal"] == 0.0
        assert result.residual <= 1e-10

    def test_stochastic_transition_expected_value(self):
        mdp = TabularMDP()
        mdp.add_transition("s", "a", "win", probability=0.5, reward=10.0)
        mdp.add_transition("s", "a", "lose", probability=0.5, reward=0.0)
        mdp.mark_terminal("win")
        mdp.mark_terminal("lose")
        result = value_iteration(mdp, discount=0.9)
        assert result.values["s"] == pytest.approx(5.0)

    def test_discount_zero_is_myopic(self):
        result = value_iteration(chain_mdp(), discount=0.0)
        assert result.values["s1"] == 0.0
        assert result.values["s2"] == 10.0

    def test_discount_bounds(self):
        with pytest.raises(ValueError):
            value_iteration(chain_mdp(), discount=1.0)

    def test_max_iterations_respected(self):
        result = value_iteration(chain_mdp(), tolerance=0.0, max_iterations=3)
        assert result.iterations == 3


class TestPolicyExtraction:
    def test_optimal_policy(self):
        mdp = chain_mdp()
        result = value_iteration(mdp, discount=0.9)
        policy = extract_policy(mdp, result.values, discount=0.9)
        assert policy == {"s1": "go", "s2": "go"}

    def test_terminal_excluded_from_policy(self):
        mdp = chain_mdp()
        result = value_iteration(mdp, discount=0.9)
        policy = extract_policy(mdp, result.values, discount=0.9)
        assert "goal" not in policy


class TestQValues:
    def test_q_consistency(self):
        mdp = chain_mdp()
        result = value_iteration(mdp, discount=0.9, tolerance=1e-10)
        q = q_values(mdp, result.values, discount=0.9)
        assert q["s2"]["go"] == pytest.approx(10.0)
        assert q["s2"]["stay"] == pytest.approx(9.0)
        assert max(q["s1"].values()) == pytest.approx(result.values["s1"])
