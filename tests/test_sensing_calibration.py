"""Unit tests for threshold calibration."""

import numpy as np
import pytest

from repro.sensing.calibration import (
    calibrate_threshold,
    false_positive_rate,
)
from repro.sensors.signals import SignalProfile, SignalSource


class TestCalibrateThreshold:
    def test_threshold_separates_clear_distributions(self):
        idle = [0.1, 0.2, 0.15, 0.05]
        active = [2.0, 1.8, 2.2, 1.9]
        result = calibrate_threshold(idle, active)
        assert result.separable
        assert max(idle) < result.threshold < min(active)

    def test_overlapping_distributions_flagged(self):
        idle = [0.5, 1.5, 1.0]
        active = [0.8, 1.2, 1.0]
        result = calibrate_threshold(idle, active, idle_quantile=1.0,
                                     active_quantile=0.0)
        assert not result.separable

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            calibrate_threshold([], [1.0])
        with pytest.raises(ValueError):
            calibrate_threshold([1.0], [])

    def test_on_synthetic_signal_source(self):
        rng = np.random.default_rng(0)
        source = SignalSource(SignalProfile(burst_probability=0.99), rng)
        idle = source.read_trace(0.0, 500, 10.0)
        source.begin_use(100.0)
        active = [source.read(100.0 + t) for t in range(200)]
        result = calibrate_threshold(idle, active)
        assert result.separable
        # The shipped default threshold (1.0) should be in the same zone.
        assert 0.3 < result.threshold < 2.0


class TestFalsePositiveRate:
    def test_rate_computation(self):
        assert false_positive_rate([0.1, 0.2, 1.5, 0.3], 1.0) == 0.25

    def test_default_threshold_near_zero_on_noise(self):
        rng = np.random.default_rng(1)
        source = SignalSource(SignalProfile(), rng)
        idle = source.read_trace(0.0, 5000, 10.0)
        assert false_positive_rate(idle, 1.0) < 0.001

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            false_positive_rate([], 1.0)
