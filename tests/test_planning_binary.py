"""The binary policy artifact and the cache paths that serve it.

The packed sidecar (``.qbin``) is a pure serving optimization of the
canonical JSON document: the tests pin byte-identity between the two
restore paths (same greedy predictions, same Q values, same curve and
convergence), copy-on-write semantics of the frozen tables, clean
JSON fallback on any corruption, and the decode-once memo of
``PolicyCache.get``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import PlanningConfig
from repro.core.errors import CoReDAError
from repro.planning.action import action_space
from repro.planning.binary import (
    MAGIC,
    PolicyArtifactError,
    pack_policy_artifact,
    read_policy_artifact,
)
from repro.planning.state import episode_states
from repro.planning.store import (
    PolicyCache,
    train_routine_cached,
    training_cache_key,
    training_from_artifact,
)


@pytest.fixture
def trained_cache(tmp_path, tea_adl):
    """A cache holding one training; returns (cache, key, warm)."""
    cache = PolicyCache(tmp_path / "cache")
    config = PlanningConfig()
    ids = list(tea_adl.canonical_routine().step_ids)
    train_routine_cached(tea_adl, ids, config, 0, 60, cache=cache)
    warm = train_routine_cached(tea_adl, ids, config, 0, 60, cache=cache)
    key = training_cache_key(tea_adl.name, ids, config, 0, 60)
    return cache, key, warm


class TestArtifactRoundTrip:
    def test_sidecar_written_next_to_json(self, trained_cache):
        cache, key, _ = trained_cache
        sidecar = cache.artifact_path_for(key)
        assert sidecar.is_file()
        assert sidecar.read_bytes()[: len(MAGIC)] == MAGIC
        assert cache.path_for(key).is_file()

    def test_binary_predictor_matches_json_predictor(
        self, trained_cache, tea_adl
    ):
        cache, key, warm = trained_cache
        artifact = cache.get_artifact(key, tea_adl)
        assert artifact is not None
        binary = training_from_artifact(artifact, PlanningConfig())
        json_predictor = warm.predictor(tea_adl)
        bin_predictor = binary.predictor(tea_adl)
        states = episode_states(tea_adl.step_ids)
        for index in range(len(states) - 1):
            assert bin_predictor.predict(states[index]) == (
                json_predictor.predict(states[index])
            )
        assert bin_predictor.converged == json_predictor.converged
        assert bin_predictor.q.max_abs_difference(
            json_predictor.q
        ) == pytest.approx(0.0)

    def test_curve_and_convergence_round_trip_exactly(self, trained_cache):
        cache, key, warm = trained_cache
        artifact = cache.get_artifact(key)
        binary = training_from_artifact(artifact, PlanningConfig())
        assert binary.curve.behaviour_accuracy == warm.curve.behaviour_accuracy
        assert binary.curve.smoothed_accuracy == warm.curve.smoothed_accuracy
        assert binary.curve.greedy_accuracy == warm.curve.greedy_accuracy
        assert binary.convergence == warm.convergence

    def test_pack_read_round_trip_from_document(self, trained_cache, tea_adl):
        cache, key, _ = trained_cache
        document = cache.get(key)
        blob = pack_policy_artifact(document, action_space(tea_adl))
        artifact = read_policy_artifact(blob)
        assert artifact.adl_name == tea_adl.name
        assert artifact.matches(tea_adl)
        assert artifact.n_actions == len(action_space(tea_adl))

    def test_wrong_adl_rejected(self, trained_cache):
        from repro.adls.tooth_brushing import make_tooth_brushing

        cache, key, _ = trained_cache
        other = make_tooth_brushing()
        assert cache.get_artifact(key, other) is None
        artifact = cache.get_artifact(key)
        with pytest.raises(CoReDAError):
            artifact.predictor(other, converged=True)


class TestFrozenCopyOnWrite:
    def test_restored_table_is_frozen_and_readable(
        self, trained_cache, tea_adl
    ):
        cache, key, _ = trained_cache
        artifact = cache.get_artifact(key, tea_adl)
        q = artifact.qtable()
        assert q._frozen
        state, action = next(iter(q.known_pairs()))
        assert isinstance(q.value(state, action), float)

    def test_write_thaws_without_touching_the_artifact(
        self, trained_cache, tea_adl
    ):
        cache, key, _ = trained_cache
        artifact = cache.get_artifact(key, tea_adl)
        q = artifact.qtable()
        state, action = next(iter(q.known_pairs()))
        before = q.value(state, action)
        q.add(state, action, 0.5)
        assert not q._frozen
        assert q.value(state, action) == pytest.approx(before + 0.5)
        # A second restore still sees the original value: the write
        # went to a private thawed copy, never the shared buffer.
        assert artifact.qtable().value(state, action) == before

    def test_set_thaws_too(self, trained_cache, tea_adl):
        cache, key, _ = trained_cache
        q = cache.get_artifact(key, tea_adl).qtable()
        state, action = next(iter(q.known_pairs()))
        q.set(state, action, 9.0)
        assert not q._frozen
        assert q.value(state, action) == 9.0

    def test_artifact_buffers_are_read_only_views(
        self, trained_cache, tea_adl
    ):
        cache, key, _ = trained_cache
        artifact = cache.get_artifact(key, tea_adl)
        with pytest.raises((ValueError, TypeError)):
            artifact.q[0, 0] = 1.0
        assert isinstance(artifact.q, np.ndarray)
        assert not artifact.q.flags.writeable


class TestCorruptionFallsBackToJson:
    def test_truncated_sidecar_returns_none_without_counting(
        self, trained_cache
    ):
        cache, key, _ = trained_cache
        sidecar = cache.artifact_path_for(key)
        blob = sidecar.read_bytes()
        sidecar.write_bytes(blob[: len(blob) // 2])
        hits, misses = cache.stats()
        assert cache.get_artifact(key) is None
        assert cache.stats() == (hits, misses)

    def test_bit_flip_fails_crc(self, trained_cache):
        cache, key, _ = trained_cache
        sidecar = cache.artifact_path_for(key)
        blob = bytearray(sidecar.read_bytes())
        blob[-1] ^= 0xFF
        with pytest.raises(PolicyArtifactError):
            read_policy_artifact(bytes(blob))

    def test_bad_magic_rejected(self, trained_cache):
        cache, key, _ = trained_cache
        blob = bytearray(cache.artifact_path_for(key).read_bytes())
        blob[:4] = b"XXXX"
        with pytest.raises(PolicyArtifactError):
            read_policy_artifact(bytes(blob))

    def test_missing_sidecar_is_silent(self, trained_cache):
        cache, key, _ = trained_cache
        cache.artifact_path_for(key).unlink()
        assert cache.get_artifact(key) is None

    def test_json_path_still_serves_after_corruption(
        self, trained_cache, tea_adl
    ):
        cache, key, warm = trained_cache
        cache.artifact_path_for(key).write_bytes(b"garbage")
        assert cache.get_artifact(key, tea_adl) is None
        document = cache.get(key)
        assert document is not None
        assert document["adl"] == tea_adl.name


class TestMemoizedGet:
    def test_repeat_gets_decode_once(self, tmp_path):
        cache = PolicyCache(tmp_path / "cache")
        cache.put("k", {"format": 1, "n": 1})
        first = cache.get("k")
        second = cache.get("k")
        assert second is first  # memo-served, not re-parsed
        assert cache.json_decodes == 1
        assert cache.stats() == (2, 0)

    def test_put_invalidates_the_memo(self, tmp_path):
        cache = PolicyCache(tmp_path / "cache")
        cache.put("k", {"format": 1, "n": 1})
        cache.get("k")
        cache.put("k", {"format": 1, "n": 2})
        assert cache.get("k")["n"] == 2
        assert cache.json_decodes == 2

    def test_external_rewrite_invalidates_the_memo(self, tmp_path):
        cache = PolicyCache(tmp_path / "cache")
        cache.put("k", {"format": 1, "n": 1})
        cache.get("k")
        cache.path_for("k").write_text(
            json.dumps({"format": 1, "n": 22222}), encoding="utf-8"
        )
        assert cache.get("k")["n"] == 22222

    def test_deleted_entry_drops_the_memo(self, tmp_path):
        cache = PolicyCache(tmp_path / "cache")
        cache.put("k", {"format": 1})
        cache.get("k")
        cache.path_for("k").unlink()
        assert cache.get("k") is None
        assert cache.stats() == (1, 1)
