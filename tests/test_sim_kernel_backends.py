"""Backend equivalence: the calendar queue vs the reference heap.

The calendar backend is a speed profile, not a semantics profile: any
workload -- including randomized schedule/cancel storms, same-instant
bursts and mid-drain pushes -- must replay event-for-event identically
to the binary heap.  These tests drive both backends through identical
operation scripts (seeded via :mod:`repro.sim.random`) and compare the
fired sequences exactly, then gate the full Figure 1 scenario.
"""

from __future__ import annotations

import pytest

from repro.core.config import CoReDAConfig, SimConfig
from repro.core.errors import ConfigurationError
from repro.evalx.scenario import run_tea_scenario
from repro.sim.kernel import (
    KERNEL_BACKENDS,
    SimulationError,
    Simulator,
    default_kernel_backend,
)
from repro.sim.random import seeded_generator

BACKENDS = list(KERNEL_BACKENDS)

#: Deliberately collision-heavy delay grid: repeated values force
#: same-instant ties, 0.0 forces same-instant pushes mid-drain, and
#: the spread crosses bucket boundaries at every tested width.
DELAY_GRID = (0.0, 0.05, 0.1, 0.25, 0.5, 0.5, 1.0, 2.5)


def generate_ops(seed: int, count: int = 400):
    """One operation script: (kind, argument) tuples."""
    rng = seeded_generator(seed)
    ops = []
    for _ in range(count):
        roll = float(rng.random())
        if roll < 0.55:
            ops.append(("schedule", int(rng.integers(len(DELAY_GRID)))))
        elif roll < 0.85:
            ops.append(("cancel", int(rng.integers(1 << 30))))
        else:
            ops.append(("run", float(rng.uniform(0.0, 2.0))))
    return ops


def replay(backend: str, ops, bucket_width: float = 0.5):
    """Apply one operation script to a fresh kernel; return the fires.

    Scheduled callbacks record ``(now, label)`` and some spawn
    children (same-instant and cross-bucket), so the script exercises
    pushes *during* a bucket drain, not just between runs.
    """
    sim = Simulator(backend=backend, bucket_width=bucket_width)
    fired = []
    handles = []
    next_label = [0]

    def make_callback(label):
        def callback():
            fired.append((sim.now, label))
            if label % 3 == 0:
                spawn(0.0)
            if label % 7 == 0:
                spawn(0.3)
        return callback

    def spawn(delay):
        label = next_label[0]
        next_label[0] += 1
        handles.append(sim.schedule(delay, make_callback(label)))

    for kind, arg in ops:
        if kind == "schedule":
            spawn(DELAY_GRID[arg])
        elif kind == "cancel" and handles:
            handles[arg % len(handles)].cancel()
        elif kind == "run":
            sim.run_until(sim.now + arg)
    sim.run()
    return fired


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_fired_sequences_identical(self, seed):
        ops = generate_ops(seed)
        reference = replay("heap", ops)
        assert replay("calendar", ops) == reference
        assert len(reference) > 100  # the script actually fires things

    @pytest.mark.parametrize("width", [0.05, 0.3, 1.0, 10.0])
    def test_bucket_width_never_changes_the_replay(self, width):
        ops = generate_ops(99)
        reference = replay("heap", ops)
        assert replay("calendar", ops, bucket_width=width) == reference


class TestSameInstantSemantics:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_push_during_drain_fires_after_earlier_ties(self, backend):
        sim = Simulator(backend=backend)
        order = []

        def first():
            order.append("first")
            sim.schedule(0.0, lambda: order.append("child"))

        sim.schedule(1.0, first)
        sim.schedule(1.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second", "child"]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_zero_delay_chain_advances_within_one_instant(self, backend):
        sim = Simulator(backend=backend)
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 5:
                sim.schedule(0.0, lambda: chain(depth + 1))

        sim.schedule(2.0, lambda: chain(0))
        sim.run()
        assert fired == list(range(6))
        assert sim.now == 2.0


class TestCancellationAccounting:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pending_count_excludes_cancelled(self, backend):
        sim = Simulator(backend=backend)
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        assert sim.pending_count == 10
        for event in events[::2]:
            event.cancel()
        assert sim.pending_count == 5
        events[1].cancel()
        assert sim.pending_count == 4
        sim.run()
        assert sim.pending_count == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cancel_storm_in_one_bucket(self, backend):
        # With bucket_width=100 every event lands in one bucket, so
        # the calendar's eager compaction must fire repeatedly while
        # survivors keep their relative order.
        sim = Simulator(backend=backend, bucket_width=100.0)
        fired = []
        events = [
            sim.schedule(1.0 + i * 0.01, (lambda i=i: fired.append(i)))
            for i in range(1000)
        ]
        for i, event in enumerate(events):
            if i % 10 != 0:
                event.cancel()
        assert sim.pending_count == 100
        sim.run()
        assert fired == list(range(0, 1000, 10))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cancel_after_fire_is_harmless(self, backend):
        sim = Simulator(backend=backend)
        fired = []
        first = sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run_until(1.5)
        first.cancel()  # already fired; must not disturb the queue
        sim.run()
        assert fired == ["a", "b"]


class TestEventReuse:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fired_reusable_event_is_recycled(self, backend):
        sim = Simulator(backend=backend)
        seen = []
        first = sim.schedule(1.0, lambda: seen.append(1), reusable=True)
        sim.run()
        second = sim.schedule(1.0, lambda: seen.append(2), reusable=True)
        assert second is first  # the free list recycled the object
        sim.run()
        assert seen == [1, 2]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cancelled_reusable_event_is_recycled(self, backend):
        sim = Simulator(backend=backend)
        event = sim.schedule(1.0, lambda: None, reusable=True)
        event.cancel()
        sim.run()  # lazy removal releases the carcass
        recycled = sim.schedule(1.0, lambda: None, reusable=True)
        assert recycled is event
        assert not recycled.cancelled  # fields reset on reuse

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_reschedule_inside_callback_reuses_one_object(self, backend):
        # The recurring-timeout shape (firmware loops, Process
        # timeouts): recycle-before-callback means the immediate
        # reschedule gets the same object back every period.
        sim = Simulator(backend=backend)
        fired = []
        identities = set()

        def tick():
            fired.append(sim.now)
            if len(fired) < 50:
                identities.add(id(sim.schedule(1.0, tick, reusable=True)))

        identities.add(id(sim.schedule(1.0, tick, reusable=True)))
        sim.run()
        assert len(fired) == 50
        assert len(identities) == 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_plain_events_are_not_recycled(self, backend):
        sim = Simulator(backend=backend)
        first = sim.schedule(1.0, lambda: None)
        sim.run()
        second = sim.schedule(1.0, lambda: None)
        assert second is not first


class TestClockEdges:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_negative_start_time(self, backend):
        # Bucket keys use floor(), not int() truncation: negative
        # times must still map to the bucket *below*, or the
        # far-future guard would skip due events.
        sim = Simulator(start_time=-3.7, backend=backend)
        fired = []
        sim.schedule(0.5, lambda: fired.append(sim.now))
        sim.schedule_at(-1.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [-3.7 + 0.5, -1.0]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_run_until_across_negative_boundary(self, backend):
        sim = Simulator(start_time=-2.0, backend=backend)
        fired = []
        for delay in (0.5, 1.5, 2.5, 3.5):
            sim.schedule(delay, (lambda d=delay: fired.append(d)))
        sim.run_until(0.0)
        assert fired == [0.5, 1.5]
        sim.run_until(2.0)
        assert fired == [0.5, 1.5, 2.5, 3.5]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_schedule_at_past_raises(self, backend):
        sim = Simulator(backend=backend)
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError) as excinfo:
            sim.schedule_at(4.0, lambda: None)
        assert "before current time" in str(excinfo.value)
        assert "4.0" in str(excinfo.value)


class TestBackendSelection:
    def test_simulator_records_its_backend(self):
        assert Simulator(backend="heap").backend == "heap"
        assert Simulator(backend="calendar").backend == "calendar"

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(backend="wheel-of-fortune")

    def test_env_override_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "heap")
        assert default_kernel_backend() == "heap"
        assert Simulator().backend == "heap"
        assert SimConfig().kernel_backend == "heap"

    def test_sim_config_validates(self):
        with pytest.raises(ConfigurationError):
            SimConfig(kernel_backend="btree")
        with pytest.raises(ConfigurationError):
            SimConfig(bucket_width=0.0)

    def test_config_flows_into_system_kernel(self):
        from repro.adls.tea_making import tea_making_definition
        from repro.core.system import CoReDA

        config = CoReDAConfig(sim=SimConfig(kernel_backend="heap"))
        system = CoReDA(tea_making_definition(), config)
        assert system.sim.backend == "heap"


class TestScenarioBackendEquivalence:
    """The tier-1 gate: the full Figure 1 scenario, heap vs calendar,
    identical timelines."""

    def test_identical_timelines(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "heap")
        heap = run_tea_scenario()
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "calendar")
        calendar = run_tea_scenario()
        assert calendar.timeline == heap.timeline
        assert calendar.completed == heap.completed
        for field in (
            "wrong_tool_prompt_time",
            "first_praise_time",
            "stall_prompt_time",
            "second_praise_time",
        ):
            assert getattr(calendar, field) == getattr(heap, field), field
