"""Fixture tests for the repro.analysis rule pack.

Each rule gets at least one failing fixture (the acceptance criterion
for the linter itself) and one passing fixture, plus tests for the
inline suppression syntax and the JSON report schema.
"""

import json
import textwrap

import pytest

from repro.analysis import (
    UnknownRuleError,
    all_rule_ids,
    lint_paths,
    lint_source,
    render_json,
    resolve_rules,
)

ALL_RULES = ("DET001", "DET002", "DET003", "DET004",
             "SIM001", "SIM002", "SIM003", "PERF001",
             "VER001", "PAR001", "PAR002")


def findings_for(source, rule, path="repro/somewhere/module.py"):
    found = lint_source(textwrap.dedent(source), path, [rule])
    return [f for f in found if not f.suppressed]


class TestRegistry:
    def test_full_pack_registered(self):
        assert set(ALL_RULES) <= set(all_rule_ids())

    def test_family_prefix_selects_family(self):
        selected = {rule.rule_id for rule in resolve_rules(["DET"])}
        assert selected == {"DET001", "DET002", "DET003", "DET004"}

    def test_family_prefixes_combine_with_exact_ids(self):
        selected = {rule.rule_id for rule in resolve_rules(["PAR", "VER001"])}
        assert selected == {"PAR001", "PAR002", "PAR003", "VER001"}

    def test_unknown_family_names_valid_families(self):
        with pytest.raises(UnknownRuleError) as excinfo:
            resolve_rules(["NOPE"])
        message = str(excinfo.value)
        for family in ("DET", "PAR", "PERF", "SIM", "VER"):
            assert family in message

    def test_unknown_rule_rejected(self):
        with pytest.raises(UnknownRuleError):
            resolve_rules(["DET999"])

    def test_rules_declare_metadata(self):
        for rule in resolve_rules():
            assert rule.rule_id
            assert rule.severity in ("error", "warning")
            assert rule.description


class TestDet001DirectRng:
    def test_flags_direct_default_rng(self):
        found = findings_for(
            """
            import numpy as np

            def cell(seed):
                return np.random.default_rng(seed)
            """,
            "DET001",
        )
        assert [f.rule for f in found] == ["DET001"]
        assert found[0].severity == "error"

    def test_flags_stdlib_random_import(self):
        assert findings_for("import random\n", "DET001")

    def test_flags_bare_generator_construction(self):
        found = findings_for(
            """
            from numpy.random import Generator, PCG64

            def make():
                return Generator(PCG64(3))
            """,
            "DET001",
        )
        # the import line plus both constructor calls
        assert len(found) == 3

    def test_allows_random_streams_usage(self):
        assert not findings_for(
            """
            from repro.sim.random import RandomStreams, seeded_generator

            def cell(streams: RandomStreams, seed):
                return streams.get("radio"), seeded_generator(seed)
            """,
            "DET001",
        )

    def test_exempts_the_rng_module_itself(self):
        source = """
            import numpy as np

            def seeded_generator(seed):
                return np.random.default_rng(seed)
            """
        assert not findings_for(source, "DET001", path="src/repro/sim/random.py")
        assert findings_for(source, "DET001", path="src/repro/evalx/x.py")


class TestDet002WallClock:
    def test_flags_time_time_call(self):
        found = findings_for(
            """
            import time

            def stamp():
                return time.time()
            """,
            "DET002",
        )
        assert [f.rule for f in found] == ["DET002"]

    def test_flags_datetime_now(self):
        assert findings_for(
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """,
            "DET002",
        )

    def test_flags_perf_counter_import(self):
        assert findings_for("from time import perf_counter\n", "DET002")

    def test_exempts_benchmarks(self):
        source = """
            import time

            def measure():
                return time.perf_counter()
            """
        assert not findings_for(source, "DET002",
                                path="benchmarks/test_bench_x.py")
        assert findings_for(source, "DET002", path="src/repro/evalx/x.py")

    def test_allows_kernel_clock(self):
        assert not findings_for(
            """
            def stamp(sim):
                return sim.now
            """,
            "DET002",
        )


class TestDet003UnorderedIteration:
    def test_flags_dict_values_iteration(self):
        found = findings_for(
            """
            from repro.sim.kernel import Simulator

            def boot(nodes):
                for node in nodes.values():
                    node.start()
            """,
            "DET003",
        )
        assert [f.rule for f in found] == ["DET003"]
        assert found[0].severity == "warning"

    def test_flags_set_literal_and_keys_in_comprehension(self):
        found = findings_for(
            """
            from repro.sim.kernel import Simulator

            def drain(table):
                order = [k for k in table.keys()]
                for uid in {3, 1, 2}:
                    order.append(uid)
                return order
            """,
            "DET003",
        )
        assert len(found) == 2

    def test_allows_sorted_and_ordered_wrappers(self):
        assert not findings_for(
            """
            from repro.sim.kernel import Simulator

            def boot(nodes):
                for uid in sorted(nodes.keys()):
                    nodes[uid].start()
                for node in list(nodes.values()):
                    node.stop()
            """,
            "DET003",
        )

    def test_out_of_scope_module_not_flagged(self):
        # No repro.sim / numpy import: the module neither schedules
        # kernel events nor draws randomness, so DET003 stays quiet.
        assert not findings_for(
            """
            def names(table):
                return [k for k in table.keys()]
            """,
            "DET003",
        )


class TestDet004TimestampEquality:
    def test_flags_equality_on_timestamp_names(self):
        found = findings_for(
            """
            def due(now, deadline):
                return now == deadline
            """,
            "DET004",
        )
        assert [f.rule for f in found] == ["DET004"]

    def test_flags_attribute_timestamps(self):
        assert findings_for(
            """
            def same(event, other):
                return event.time != other.time
            """,
            "DET004",
        )

    def test_allows_ordering_comparisons(self):
        assert not findings_for(
            """
            def due(now, deadline):
                return now >= deadline
            """,
            "DET004",
        )

    def test_allows_infinity_sentinel(self):
        assert not findings_for(
            """
            import math

            def unbounded(active_until):
                return active_until == float("inf") or active_until == math.inf
            """,
            "DET004",
        )


class TestSim001ProcessYields:
    def test_flags_non_directive_yield(self):
        found = findings_for(
            """
            from repro.sim.process import Timeout

            def firmware(period):
                while True:
                    yield Timeout(period)
                    yield 5
            """,
            "SIM001",
        )
        assert [f.rule for f in found] == ["SIM001"]

    def test_flags_bare_yield(self):
        assert findings_for(
            """
            from repro.sim.process import Wait

            def body(signal):
                payload = yield Wait(signal)
                yield
            """,
            "SIM001",
        )

    def test_allows_directive_only_bodies(self):
        assert not findings_for(
            """
            from repro.sim.process import Timeout, Wait

            def body(signal, directive):
                yield Timeout(1.0)
                payload = yield Wait(signal, timeout=5.0)
                yield directive
            """,
            "SIM001",
        )

    def test_plain_generators_are_not_process_bodies(self):
        # Never yields a directive -> utility generator, out of scope.
        assert not findings_for(
            """
            def numbers(n):
                for i in range(n):
                    yield i
            """,
            "SIM001",
        )


class TestSim002SnapshotPairing:
    def test_flags_capture_without_restore(self):
        found = findings_for(
            """
            class Node:
                def capture_block(self):
                    return ()
            """,
            "SIM002",
        )
        assert [f.rule for f in found] == ["SIM002"]
        assert "restore_block" in found[0].message

    def test_flags_bare_snapshot_without_restore(self):
        assert findings_for(
            """
            class Detector:
                def snapshot(self):
                    return ()
            """,
            "SIM002",
        )

    def test_allows_paired_methods(self):
        assert not findings_for(
            """
            class Source:
                def capture(self):
                    return ()

                def restore(self, state):
                    pass

                def snapshot_window(self):
                    return ()

                def restore_window(self, state):
                    pass
            """,
            "SIM002",
        )


class TestPerf001Slots:
    def test_flags_manifest_class_without_slots(self):
        found = findings_for(
            """
            class KofNDetector:
                def __init__(self):
                    self.k = 3
            """,
            "PERF001",
            path="src/repro/sensors/detector.py",
        )
        assert [f.rule for f in found] == ["PERF001"]

    def test_flags_manifest_drift(self):
        found = findings_for(
            "class SomethingElse:\n    pass\n",
            "PERF001",
            path="src/repro/sim/kernel.py",
        )
        assert found and "not found" in found[0].message

    def test_allows_explicit_slots(self):
        assert not findings_for(
            """
            class KofNDetector:
                __slots__ = ("k", "n")
            """,
            "PERF001",
            path="src/repro/sensors/detector.py",
        )

    def test_allows_dataclass_slots_true(self):
        assert not findings_for(
            """
            from dataclasses import dataclass

            @dataclass(slots=True)
            class Event:
                seq: int

            class _HeapQueue:
                __slots__ = ("_heap",)

            class _CalendarQueue:
                __slots__ = ("_buckets",)
            """,
            "PERF001",
            path="src/repro/sim/kernel.py",
        )

    def test_unlisted_modules_ignored(self):
        assert not findings_for(
            "class Anything:\n    pass\n",
            "PERF001",
            path="src/repro/evalx/tables.py",
        )


class TestSuppressions:
    SOURCE = """
        import numpy as np

        def cell(seed):
            return np.random.default_rng(seed)  # repro: allow[DET001] fixture
        """

    def test_same_line_comment_suppresses(self):
        found = lint_source(textwrap.dedent(self.SOURCE), "repro/x.py",
                            ["DET001"])
        assert len(found) == 1
        assert found[0].suppressed

    def test_other_rule_id_does_not_suppress(self):
        source = self.SOURCE.replace("allow[DET001]", "allow[DET002]")
        found = lint_source(textwrap.dedent(source), "repro/x.py", ["DET001"])
        assert len(found) == 1
        assert not found[0].suppressed

    def test_comma_separated_ids(self):
        source = """
            import numpy as np

            def cell(now, deadline):
                if now == deadline:  # repro: allow[DET004,DET001] fixture
                    return np.random.default_rng(0)  # repro: allow[DET001]
            """
        found = lint_source(textwrap.dedent(source), "repro/x.py",
                            ["DET001", "DET004"])
        assert found and all(f.suppressed for f in found)

    def test_comment_on_other_line_does_not_suppress(self):
        source = """
            import numpy as np

            # repro: allow[DET001] wrong line
            def cell(seed):
                return np.random.default_rng(seed)
            """
        found = lint_source(textwrap.dedent(source), "repro/x.py", ["DET001"])
        assert len(found) == 1
        assert not found[0].suppressed

    def test_multiline_statement_suppressed_from_any_line(self):
        # The finding anchors on the call's first line; the comment
        # sits on the closing-paren line two lines down.
        source = """
            import numpy as np

            def cell(seed):
                return np.random.default_rng(
                    seed,
                )  # repro: allow[DET001] fixture
            """
        found = lint_source(textwrap.dedent(source), "repro/x.py", ["DET001"])
        assert len(found) == 1
        assert found[0].line == 5
        assert found[0].suppressed

    def test_decorator_line_suppresses_def_finding(self):
        # SIM002 anchors on the decorated def; the allow[] sits on
        # the decorator line above it.
        source = """
            class Node:
                @property  # repro: allow[SIM002] restore handled externally
                def snapshot_state(self):
                    return self._state
            """
        found = lint_source(textwrap.dedent(source), "repro/x.py", ["SIM002"])
        assert len(found) == 1
        assert found[0].suppressed

    def test_def_line_suppresses_decorated_def_finding(self):
        source = """
            class Node:
                @property
                def snapshot_state(self):  # repro: allow[SIM002] external
                    return self._state
            """
        found = lint_source(textwrap.dedent(source), "repro/x.py", ["SIM002"])
        assert len(found) == 1
        assert found[0].suppressed

    def test_comment_inside_body_does_not_suppress_def(self):
        # A compound statement's span is its header, not its body: a
        # suppression buried in the function must not silence a
        # finding on the def line.
        source = """
            class Node:
                def snapshot_state(self):
                    return self._state  # repro: allow[SIM002] wrong scope
            """
        found = lint_source(textwrap.dedent(source), "repro/x.py", ["SIM002"])
        assert len(found) == 1
        assert not found[0].suppressed


class TestJsonSchema:
    def test_report_schema(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import numpy as np\n\n"
            "def cell():\n"
            "    ok = np.random.default_rng(1)  # repro: allow[DET001] x\n"
            "    return np.random.default_rng(0)\n",
            encoding="utf-8",
        )
        report = lint_paths([str(bad)])
        document = json.loads(render_json(report))
        assert document["version"] == 2
        assert document["files_checked"] == 1
        assert document["summary"] == {
            "findings": 1, "suppressed": 1, "baselined": 0,
        }
        (finding,) = document["findings"]
        assert set(finding) == {"path", "line", "column", "rule",
                                "severity", "message"}
        assert finding["rule"] == "DET001"
        assert finding["line"] == 5
        (suppressed,) = document["suppressed"]
        assert suppressed["line"] == 4

    def test_clean_file_reports_empty_findings(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 3\n", encoding="utf-8")
        document = json.loads(render_json(lint_paths([str(clean)])))
        assert document["findings"] == []
        assert document["summary"]["findings"] == 0
