"""Tests for pass 1 of the whole-program analyzer: the ProjectIndex,
the conservative call graph, and the file-expansion driver.

The index is what the cross-module rules (VER001, PAR00x) stand on;
these tests pin its resolution semantics -- qualified names, import
aliases, the attribute-write kinds, package re-export fallback, and
the deliberate over-approximation of dynamic dispatch.
"""

import textwrap

import pytest

from repro.analysis.core import (
    LintUsageError,
    ModuleContext,
    StatementOrder,
    iter_python_files,
)
from repro.analysis.index import ProjectIndex, module_dotted_name


def _module(path, source):
    return ModuleContext(path, textwrap.dedent(source))


def _project(*modules):
    return ProjectIndex([_module(path, source) for path, source in modules])


class TestModuleDottedName:
    def test_src_anchored(self):
        assert module_dotted_name("src/repro/rl/dense.py") == "repro.rl.dense"

    def test_package_init_maps_to_package(self):
        assert module_dotted_name("src/repro/evalx/__init__.py") == (
            "repro.evalx"
        )

    def test_repro_anchored_without_src(self):
        assert module_dotted_name("repro/sim/kernel.py") == "repro.sim.kernel"

    def test_unanchored_falls_back_to_stem(self):
        assert module_dotted_name("/tmp/elsewhere/fixture.py") == "fixture"


class TestSymbolTable:
    def test_functions_methods_and_nesting(self):
        project = _project((
            "src/repro/pkg/mod.py",
            """
            def top():
                def inner():
                    return 1
                return inner

            class Box:
                def get(self):
                    return 1
            """,
        ))
        top = project.functions[("src/repro/pkg/mod.py", "top")]
        inner = project.functions[("src/repro/pkg/mod.py", "top.inner")]
        get = project.functions[("src/repro/pkg/mod.py", "Box.get")]
        assert top.is_module_level
        assert inner.is_nested and not inner.is_module_level
        assert get.owner_class == "Box" and not get.is_module_level
        box = project.classes[("src/repro/pkg/mod.py", "Box")]
        assert box.methods["get"] is get

    def test_conditionally_defined_functions_index(self):
        project = _project((
            "src/repro/pkg/mod.py",
            """
            try:
                def fast():
                    return 1
            except ImportError:
                def fast():
                    return 2
            """,
        ))
        assert ("src/repro/pkg/mod.py", "fast") in project.functions

    def test_import_aliases(self):
        project = _project((
            "src/repro/pkg/mod.py",
            """
            import numpy as np
            from repro.evalx.parallel import Cell as C, run_cells
            """,
        ))
        symbols = project.symbols["src/repro/pkg/mod.py"]
        assert symbols.modules["np"] == "numpy"
        assert symbols.imported_from("C") == (
            "repro.evalx.parallel", "Cell",
        )
        assert symbols.imported_from("run_cells") == (
            "repro.evalx.parallel", "run_cells",
        )

    def test_module_member_reexport_fallback(self):
        project = _project(
            (
                "src/repro/pkg/impl.py",
                """
                def work():
                    return 1
                """,
            ),
        )
        # Asked for repro.pkg.work (the package re-export), resolved
        # to the defining submodule.
        info = project.module_member("repro.pkg", "work")
        assert info is not None and info.qualname == "work"


class TestAttributeWrites:
    def test_kinds(self):
        project = _project((
            "src/repro/pkg/mod.py",
            """
            class Table:
                def set(self, k, v):
                    self._q[k] = v

                def merge(self, other):
                    self._q.update(other)

                def copy(self):
                    clone = Table()
                    clone._q = dict(self._q)
                    return clone
            """,
        ))
        kinds = sorted(w.kind for w in project.attribute_writes("_q"))
        assert kinds == ["mutate", "rebind", "subscript"]

    def test_writes_attributed_to_their_function(self):
        project = _project((
            "src/repro/pkg/mod.py",
            """
            class Table:
                def set(self, k, v):
                    self._flat[k] = v
            """,
        ))
        (write,) = project.attribute_writes("_flat")
        assert write.function.qualname == "Table.set"


class TestCallGraph:
    def test_same_module_and_import_resolution(self):
        project = _project(
            (
                "src/repro/pkg/helpers.py",
                """
                def shared():
                    return 1
                """,
            ),
            (
                "src/repro/pkg/mod.py",
                """
                from repro.pkg.helpers import shared

                def local():
                    return 2

                def caller():
                    return local() + shared()
                """,
            ),
        )
        graph = project.callgraph()
        (site_a, site_b) = sorted(
            graph.sites[("src/repro/pkg/mod.py", "caller")],
            key=lambda s: s.node.col_offset,
        )
        assert [c.qualname for c in site_a.callees] == ["local"]
        assert [c.qualname for c in site_b.callees] == ["shared"]

    def test_self_method_resolution(self):
        project = _project((
            "src/repro/pkg/mod.py",
            """
            class Box:
                def outer(self):
                    return self.inner()

                def inner(self):
                    return 1
            """,
        ))
        graph = project.callgraph()
        (site,) = graph.sites[("src/repro/pkg/mod.py", "Box.outer")]
        assert [c.qualname for c in site.callees] == ["Box.inner"]

    def test_dynamic_dispatch_over_approximates_to_methods(self):
        project = _project(
            (
                "src/repro/pkg/a.py",
                """
                class TableA:
                    def flush(self):
                        return 1
                """,
            ),
            (
                "src/repro/pkg/b.py",
                """
                def flush():
                    return "module level, must not match"

                def caller(obj):
                    return obj.flush()
                """,
            ),
        )
        graph = project.callgraph()
        (site,) = graph.sites[("src/repro/pkg/b.py", "caller")]
        assert [c.qualname for c in site.callees] == ["TableA.flush"]

    def test_reachable_from_is_transitive_and_sorted(self):
        project = _project((
            "src/repro/pkg/mod.py",
            """
            def leaf():
                return 1

            def mid():
                return leaf()

            def root():
                return mid()

            def unrelated():
                return 0
            """,
        ))
        graph = project.callgraph()
        root = project.functions[("src/repro/pkg/mod.py", "root")]
        names = [f.qualname for f in graph.reachable_from([root])]
        assert names == ["leaf", "mid", "root"]

    def test_callers_of(self):
        project = _project((
            "src/repro/pkg/mod.py",
            """
            def helper():
                return 1

            def a():
                return helper()

            def b():
                return helper()
            """,
        ))
        graph = project.callgraph()
        helper = project.functions[("src/repro/pkg/mod.py", "helper")]
        callers = sorted(
            site.caller.qualname for site in graph.callers_of(helper.key)
        )
        assert callers == ["a", "b"]


class TestStatementOrder:
    def _order(self, source):
        import ast

        tree = ast.parse(textwrap.dedent(source))
        function = tree.body[0]
        return function, StatementOrder(function)

    def test_covers_after_block_level(self):
        function, order = self._order(
            """
            def f(q, cond):
                if cond:
                    q.write()
                q.bump()
            """
        )
        if_stmt = function.body[0]
        write = if_stmt.body[0]
        bump = function.body[1]
        assert order.covers_after(write, bump)
        assert not order.covers_after(bump, write)

    def test_bump_inside_one_branch_does_not_cover(self):
        function, order = self._order(
            """
            def f(q, cond):
                q.write()
                if cond:
                    q.bump()
            """
        )
        write = function.body[0]
        bump = function.body[1].body[0]
        assert not order.covers_after(write, bump)

    def test_fallthrough_stops_at_terminator(self):
        function, order = self._order(
            """
            def f(items):
                for item in items:
                    first()
                    continue
                    second()
                after_loop()
            """
        )
        first = function.body[0].body[0]
        later = [
            getattr(stmt.value.func, "id", "?")
            for stmt in order.fallthrough(first)
            if hasattr(stmt, "value")
        ]
        # continue ends the scan: neither the dead statement after it
        # nor the post-loop statement is reachable by falling through.
        assert "second" not in later and "after_loop" not in later


class TestIterPythonFiles:
    def test_overlapping_arguments_deduplicate(self, tmp_path):
        pkg = tmp_path / "pkg"
        sub = pkg / "sub"
        sub.mkdir(parents=True)
        (pkg / "a.py").write_text("A = 1\n", encoding="utf-8")
        (sub / "b.py").write_text("B = 1\n", encoding="utf-8")
        once = iter_python_files([str(pkg)])
        twice = iter_python_files([str(pkg), str(sub), str(sub / "b.py")])
        assert [p.name for p in once] == [p.name for p in twice] == [
            "a.py", "b.py",
        ]

    def test_order_is_deterministic_regardless_of_arg_order(self, tmp_path):
        for name in ("z.py", "a.py", "m.py"):
            (tmp_path / name).write_text("X = 1\n", encoding="utf-8")
        forward = iter_python_files(
            [str(tmp_path / n) for n in ("z.py", "a.py", "m.py")]
        )
        reverse = iter_python_files(
            [str(tmp_path / n) for n in ("m.py", "a.py", "z.py")]
        )
        assert forward == reverse
        assert [p.name for p in forward] == ["a.py", "m.py", "z.py"]

    def test_missing_path_raises_usage_error(self):
        with pytest.raises(LintUsageError):
            iter_python_files(["no/such/path.py"])
