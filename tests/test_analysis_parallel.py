"""PAR001/PAR002 fixtures: the process-boundary contracts.

PAR001: Cell/.submit callables must be module-level (picklable by
reference) and cell payloads must be scalars -- no lambdas or
generator expressions smuggled across the fork.  PAR002: anything a
worker can reach through the call graph must not write module-level
state; workers mutate a copy the parent never observes (the PR 6
cache-stats leak class).
"""

import textwrap

from repro.analysis import lint_source
from repro.analysis.core import ModuleContext, lint_modules


def findings(source, rules, path="src/repro/evalx/fixture.py"):
    found = lint_source(textwrap.dedent(source), path, rules)
    return [f for f in found if not f.suppressed]


def findings_multi(rules, *modules):
    contexts = [
        ModuleContext(path, textwrap.dedent(source))
        for path, source in modules
    ]
    return [f for f in lint_modules(contexts, rules) if not f.suppressed]


class TestPar001Callables:
    def test_lambda_cell_fn_flagged(self):
        found = findings(
            """
            from repro.evalx.parallel import Cell

            CELLS = [Cell(lambda seed: seed, 1)]
            """,
            ["PAR001"],
        )
        assert [f.rule for f in found] == ["PAR001"]
        assert "lambda" in found[0].message

    def test_nested_def_cell_fn_flagged(self):
        found = findings(
            """
            from repro.evalx.parallel import Cell

            def build():
                def run(seed):
                    return seed
                return Cell(run, 1)
            """,
            ["PAR001"],
        )
        assert [f.rule for f in found] == ["PAR001"]
        assert "nested" in found[0].message

    def test_bound_method_cell_fn_flagged(self):
        found = findings(
            """
            from repro.evalx.parallel import Cell

            class Runner:
                def build(self):
                    return Cell(self.run, 1)

                def run(self, seed):
                    return seed
            """,
            ["PAR001"],
        )
        assert [f.rule for f in found] == ["PAR001"]
        assert "bound method" in found[0].message

    def test_module_level_fn_is_clean(self):
        found = findings(
            """
            from repro.evalx.parallel import Cell

            def run(seed):
                return seed

            CELLS = [Cell(run, 1), Cell(fn=run)]
            """,
            ["PAR001"],
        )
        assert found == []

    def test_imported_module_level_fn_is_clean(self):
        found = findings_multi(
            ["PAR001"],
            (
                "src/repro/evalx/workers.py",
                """
                def run(seed):
                    return seed
                """,
            ),
            (
                "src/repro/evalx/driver.py",
                """
                from repro.evalx.parallel import Cell
                from repro.evalx.workers import run

                CELLS = [Cell(run, 1)]
                """,
            ),
        )
        assert found == []

    def test_cell_via_module_alias_checked(self):
        found = findings(
            """
            from repro.evalx import parallel

            CELLS = [parallel.Cell(lambda s: s, 1)]
            """,
            ["PAR001"],
        )
        assert [f.rule for f in found] == ["PAR001"]

    def test_unrelated_cell_class_ignored(self):
        found = findings(
            """
            from biology import Cell

            CELLS = [Cell(lambda s: s, 1)]
            """,
            ["PAR001"],
        )
        assert found == []

    def test_submit_lambda_flagged(self):
        found = findings(
            """
            def drive(pool):
                return pool.submit(lambda: 1)
            """,
            ["PAR001"],
        )
        assert [f.rule for f in found] == ["PAR001"]

    def test_submit_module_level_fn_clean(self):
        # The executor.submit(_timed_cell, cell) idiom inside
        # repro.evalx.parallel itself.
        found = findings(
            """
            def _timed_cell(cell):
                return cell

            def drive(executor, cell):
                return executor.submit(_timed_cell, cell)
            """,
            ["PAR001"],
        )
        assert found == []


class TestPar001Payloads:
    def test_lambda_payload_flagged(self):
        found = findings(
            """
            from repro.evalx.parallel import Cell

            def run(seed):
                return seed

            CELLS = [Cell(run, key=lambda s: s)]
            """,
            ["PAR001"],
        )
        assert [f.rule for f in found] == ["PAR001"]
        assert "payload" in found[0].message

    def test_generator_expression_payload_flagged(self):
        found = findings(
            """
            from repro.evalx.parallel import Cell

            def run(seeds):
                return sum(seeds)

            CELLS = [Cell(run, (s * 2 for s in range(4)))]
            """,
            ["PAR001"],
        )
        assert [f.rule for f in found] == ["PAR001"]
        assert "generator expression" in found[0].message

    def test_scalar_payloads_clean(self):
        found = findings(
            """
            from repro.evalx.parallel import Cell

            def run(seed, name, weights):
                return seed

            CELLS = [Cell(run, 3, "tea-making", (0.1, 0.9))]
            """,
            ["PAR001"],
        )
        assert found == []


class TestPar002WorkerState:
    def test_global_write_in_entry_point_flagged(self):
        found = findings(
            """
            from repro.evalx.parallel import Cell

            _HITS = 0

            def run(seed):
                global _HITS
                _HITS += 1
                return seed

            CELLS = [Cell(run, 1)]
            """,
            ["PAR002"],
        )
        assert [f.rule for f in found] == ["PAR002"]
        assert "_HITS" in found[0].message

    def test_global_write_reached_through_helper_flagged(self):
        found = findings_multi(
            ["PAR002"],
            (
                "src/repro/evalx/stats.py",
                """
                COUNTER = 0

                def bump_counter():
                    global COUNTER
                    COUNTER += 1
                """,
            ),
            (
                "src/repro/evalx/driver.py",
                """
                from repro.evalx.parallel import Cell
                from repro.evalx.stats import bump_counter

                def run(seed):
                    bump_counter()
                    return seed

                CELLS = [Cell(run, 1)]
                """,
            ),
        )
        assert [f.rule for f in found] == ["PAR002"]
        assert found[0].path == "src/repro/evalx/stats.py"

    def test_module_attribute_write_flagged(self):
        found = findings(
            """
            from repro.evalx.parallel import Cell
            import repro.evalx.settings as settings

            def run(seed):
                settings.last_seed = seed
                return seed

            CELLS = [Cell(run, 1)]
            """,
            ["PAR002"],
        )
        assert [f.rule for f in found] == ["PAR002"]
        assert "settings.last_seed" in found[0].message

    def test_same_global_outside_worker_reach_is_clean(self):
        found = findings(
            """
            _STATE = 0

            def parent_only():
                global _STATE
                _STATE += 1
            """,
            ["PAR002"],
        )
        assert found == []

    def test_local_mutation_in_worker_is_clean(self):
        found = findings(
            """
            from repro.evalx.parallel import Cell

            def run(seed):
                acc = {}
                acc["seed"] = seed
                return acc

            CELLS = [Cell(run, 1)]
            """,
            ["PAR002"],
        )
        assert found == []
