"""Unit tests for the ADL library."""

import pytest

from repro.adls.library import ADLDefinition, ADLRegistry, default_registry
from repro.adls.tea_making import make_tea_making
from repro.core.adl import SensorType
from repro.core.errors import UnknownADLError


class TestRegistry:
    def test_default_contains_all_five(self, registry):
        assert registry.names() == [
            "coffee-making",
            "dressing",
            "hand-washing",
            "tea-making",
            "tooth-brushing",
        ]
        assert len(registry) == 5

    def test_get_caches(self, registry):
        assert registry.get("tea-making") is registry.get("tea-making")

    def test_unknown_raises(self, registry):
        with pytest.raises(UnknownADLError):
            registry.get("cooking")

    def test_contains(self, registry):
        assert "dressing" in registry
        assert "cooking" not in registry

    def test_duplicate_registration_rejected(self):
        registry = ADLRegistry()
        registry.register("x", lambda: None)
        with pytest.raises(ValueError):
            registry.register("x", lambda: None)


class TestPaperADLs:
    def test_tea_making_table2(self, tea_definition):
        adl = tea_definition.adl
        assert [s.name for s in adl.steps] == [
            "Put tea-leaf into kettle",
            "Pour hot water into kettle",
            "Pour tea into tea cup",
            "Drink a cup of tea",
        ]
        # Pressure on pot, accelerometers elsewhere (paper Table 2).
        sensors = [s.tool.sensor for s in adl.steps]
        assert sensors[1] == SensorType.PRESSURE
        assert all(
            s == SensorType.ACCELEROMETER for i, s in enumerate(sensors) if i != 1
        )

    def test_tooth_brushing_table2(self, tooth_definition):
        adl = tooth_definition.adl
        assert [s.name for s in adl.steps] == [
            "Put toothpaste on the brush",
            "Brush the teeth",
            "Gargle with water",
            "Dry with a towel",
        ]
        assert all(
            s.tool.sensor == SensorType.ACCELEROMETER for s in adl.steps
        )

    def test_short_steps_have_short_handling(self, tea_definition,
                                             tooth_definition):
        # The paper attributes low extract precision to short durations;
        # the definitions must encode that.
        tea = tea_definition.adl
        tooth = tooth_definition.adl
        handlings_tea = {s.name: s.handling_duration for s in tea.steps}
        handlings_tooth = {s.name: s.handling_duration for s in tooth.steps}
        assert handlings_tea["Pour hot water into kettle"] == min(
            handlings_tea.values()
        )
        assert handlings_tooth["Dry with a towel"] == min(
            handlings_tooth.values()
        )

    def test_every_tool_has_a_profile(self, registry):
        for name in registry.names():
            definition = registry.get(name)
            for tool in definition.adl.tools:
                assert tool.tool_id in definition.signal_profiles


class TestToolIdNamespaces:
    def test_tool_ids_globally_unique(self, registry):
        seen = {}
        for name in registry.names():
            for tool in registry.get(name).adl.tools:
                assert tool.tool_id not in seen, (
                    f"tool id {tool.tool_id} reused by {name} and "
                    f"{seen.get(tool.tool_id)}"
                )
                seen[tool.tool_id] = name


class TestDressing:
    def test_two_routines_share_tools(self, registry):
        from repro.adls.dressing import dressing_routines

        adl = registry.get("dressing").adl
        a, b = dressing_routines(adl)
        assert sorted(a.step_ids) == sorted(b.step_ids)
        assert a.step_ids != b.step_ids
        assert a.terminal_step_id == b.terminal_step_id
