"""Unit tests for configuration persistence."""

import json

import pytest

from repro.core.config import CoReDAConfig, RemindingConfig
from repro.core.config_io import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)
from repro.core.errors import ConfigurationError


class TestRoundTrip:
    def test_default_config_roundtrips(self, tmp_path):
        config = CoReDAConfig(seed=42)
        path = tmp_path / "coreda.json"
        save_config(config, path)
        assert load_config(path) == config

    def test_customized_config_roundtrips(self, tmp_path):
        from dataclasses import replace

        config = replace(
            CoReDAConfig(seed=7),
            reminding=RemindingConfig(stall_timeout=45.0, escalate_after=1),
        )
        path = tmp_path / "coreda.json"
        save_config(config, path)
        restored = load_config(path)
        assert restored.reminding.stall_timeout == 45.0
        assert restored.reminding.escalate_after == 1
        assert restored == config

    def test_file_is_editable_json(self, tmp_path):
        path = tmp_path / "coreda.json"
        save_config(CoReDAConfig(), path)
        document = json.loads(path.read_text())
        assert document["planning"]["terminal_reward"] == 1000.0
        assert document["sensing"]["sampling_hz"] == 10.0


class TestPartialDocuments:
    def test_missing_sections_use_defaults(self):
        config = config_from_dict({"seed": 9})
        assert config.seed == 9
        assert config.planning == CoReDAConfig().planning

    def test_partial_section(self):
        config = config_from_dict(
            {"reminding": {"stall_timeout": 50.0}}
        )
        assert config.reminding.stall_timeout == 50.0
        assert (
            config.reminding.minimal_blinks
            == RemindingConfig().minimal_blinks
        )

    def test_empty_document_is_default(self):
        assert config_from_dict({}) == CoReDAConfig()


class TestValidation:
    def test_unknown_section_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"reminders": {}})

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"planning": {"learning_rte": 0.2}})

    def test_non_object_section_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"planning": 7})

    def test_invalid_values_caught_by_dataclass_checks(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"planning": {"learning_rate": 5.0}})
