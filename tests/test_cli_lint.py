"""Regression tests for the ``repro lint`` CLI surface.

Exit-code contract: 0 clean, 1 findings, 2 usage error.  Runs the CLI
in-process through ``repro.cli.main`` so failures show real
tracebacks instead of a subprocess exit status.
"""

import json

import pytest

from repro.cli import main

DIRTY = (
    "import numpy as np\n"
    "\n"
    "def cell(now, deadline):\n"
    "    if now == deadline:\n"
    "        return np.random.default_rng(0)\n"
)


@pytest.fixture
def dirty_file(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(DIRTY, encoding="utf-8")
    return path


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text("VALUE = 3\n", encoding="utf-8")
    return path


def test_clean_path_exits_zero(clean_file, capsys):
    assert main(["lint", str(clean_file)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_findings_exit_one_with_locations(dirty_file, capsys):
    assert main(["lint", str(dirty_file)]) == 1
    out = capsys.readouterr().out
    # np.random.default_rng plus the timestamp equality
    assert "DET001" in out and "DET004" in out
    assert f"{dirty_file}:5:" in out


def test_json_format(dirty_file, capsys):
    assert main(["lint", "--format", "json", str(dirty_file)]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == 1
    rules = {finding["rule"] for finding in document["findings"]}
    assert rules == {"DET001", "DET004"}


def test_rules_filter_limits_the_pack(dirty_file, capsys):
    # Filtering to DET001,DET002 must hide the DET004 finding.
    assert main(["lint", "--rules", "DET001,DET002", str(dirty_file)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out
    assert "DET004" not in out


def test_rules_filter_can_make_a_dirty_file_pass(dirty_file):
    assert main(["lint", "--rules", "SIM001", str(dirty_file)]) == 0


def test_unknown_rule_is_usage_error(dirty_file):
    with pytest.raises(SystemExit) as excinfo:
        main(["lint", "--rules", "DET999", str(dirty_file)])
    assert excinfo.value.code == 2


def test_missing_path_is_usage_error(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        main(["lint", str(tmp_path / "no_such_dir")])
    assert excinfo.value.code == 2


def test_suppressed_findings_do_not_fail(tmp_path, capsys):
    path = tmp_path / "allowed.py"
    path.write_text(
        "import numpy as np\n"
        "\n"
        "def cell():\n"
        "    return np.random.default_rng(0)  # repro: allow[DET001] fixture\n",
        encoding="utf-8",
    )
    assert main(["lint", str(path)]) == 0
    assert "1 suppressed" in capsys.readouterr().out
