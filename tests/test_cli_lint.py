"""Regression tests for the ``repro lint`` CLI surface.

Exit-code contract: 0 clean, 1 findings, 2 usage error.  Runs the CLI
in-process through ``repro.cli.main`` so failures show real
tracebacks instead of a subprocess exit status.
"""

import json

import pytest

from repro.cli import main

DIRTY = (
    "import numpy as np\n"
    "\n"
    "def cell(now, deadline):\n"
    "    if now == deadline:\n"
    "        return np.random.default_rng(0)\n"
)


@pytest.fixture
def dirty_file(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(DIRTY, encoding="utf-8")
    return path


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text("VALUE = 3\n", encoding="utf-8")
    return path


def test_clean_path_exits_zero(clean_file, capsys):
    assert main(["lint", str(clean_file)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_findings_exit_one_with_locations(dirty_file, capsys):
    assert main(["lint", str(dirty_file)]) == 1
    out = capsys.readouterr().out
    # np.random.default_rng plus the timestamp equality
    assert "DET001" in out and "DET004" in out
    assert f"{dirty_file}:5:" in out


def test_json_format(dirty_file, capsys):
    assert main(["lint", "--format", "json", str(dirty_file)]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == 2
    rules = {finding["rule"] for finding in document["findings"]}
    assert rules == {"DET001", "DET004"}


def test_rules_filter_limits_the_pack(dirty_file, capsys):
    # Filtering to DET001,DET002 must hide the DET004 finding.
    assert main(["lint", "--rules", "DET001,DET002", str(dirty_file)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out
    assert "DET004" not in out


def test_rules_filter_can_make_a_dirty_file_pass(dirty_file):
    assert main(["lint", "--rules", "SIM001", str(dirty_file)]) == 0


def test_unknown_rule_is_usage_error(dirty_file):
    with pytest.raises(SystemExit) as excinfo:
        main(["lint", "--rules", "DET999", str(dirty_file)])
    assert excinfo.value.code == 2


def test_missing_path_is_usage_error(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        main(["lint", str(tmp_path / "no_such_dir")])
    assert excinfo.value.code == 2


def test_suppressed_findings_do_not_fail(tmp_path, capsys):
    path = tmp_path / "allowed.py"
    path.write_text(
        "import numpy as np\n"
        "\n"
        "def cell():\n"
        "    return np.random.default_rng(0)  # repro: allow[DET001] fixture\n",
        encoding="utf-8",
    )
    assert main(["lint", str(path)]) == 0
    assert "1 suppressed" in capsys.readouterr().out


def test_rules_family_prefix_selects_family(dirty_file, capsys):
    # "DET" expands to every DET* rule: both findings survive.
    assert main(["lint", "--rules", "DET", str(dirty_file)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "DET004" in out


def test_rules_family_prefix_mixes_with_exact_ids(dirty_file, capsys):
    assert main(["lint", "--rules", "SIM,DET001", str(dirty_file)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "DET004" not in out


def test_unknown_family_usage_error_names_families(dirty_file, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["lint", "--rules", "XYZ", str(dirty_file)])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    for family in ("DET", "PAR", "PERF", "SIM", "VER"):
        assert family in err


def test_sarif_format_shape(dirty_file, capsys):
    assert main(["lint", "--format", "sarif", str(dirty_file)]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == "2.1.0"
    assert document["$schema"].endswith("sarif-schema-2.1.0.json")
    (run,) = document["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    declared = {rule["id"] for rule in driver["rules"]}
    assert {"DET001", "DET004", "VER001", "PAR001", "SIM003"} <= declared
    results = run["results"]
    assert {result["ruleId"] for result in results} == {"DET001", "DET004"}
    for result in results:
        assert result["level"] in ("error", "warning")
        assert result["message"]["text"]
        (location,) = result["locations"]
        region = location["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1
        assert location["physicalLocation"]["artifactLocation"]["uri"]


def test_sarif_marks_inline_suppressions(tmp_path, capsys):
    path = tmp_path / "allowed.py"
    path.write_text(
        "import numpy as np\n"
        "\n"
        "def cell():\n"
        "    return np.random.default_rng(0)  # repro: allow[DET001] fixture\n",
        encoding="utf-8",
    )
    assert main(["lint", "--format", "sarif", str(path)]) == 0
    document = json.loads(capsys.readouterr().out)
    (result,) = document["runs"][0]["results"]
    assert result["suppressions"] == [{"kind": "inSource"}]


def test_write_baseline_then_lint_with_it_passes(dirty_file, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main([
        "lint", "--write-baseline", str(baseline), str(dirty_file),
    ]) == 0
    capsys.readouterr()
    # The dirty file fails plain lint but passes against its baseline.
    assert main(["lint", str(dirty_file)]) == 1
    capsys.readouterr()
    assert main([
        "lint", "--baseline", str(baseline), str(dirty_file),
    ]) == 0
    assert "2 baselined" in capsys.readouterr().out


def test_new_finding_fails_despite_baseline(dirty_file, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main([
        "lint", "--write-baseline", str(baseline), str(dirty_file),
    ]) == 0
    capsys.readouterr()
    dirty_file.write_text(
        dirty_file.read_text(encoding="utf-8")
        + "\nimport random\nEXTRA = random.Random(7)\n",
        encoding="utf-8",
    )
    assert main([
        "lint", "--baseline", str(baseline), str(dirty_file),
    ]) == 1
    out = capsys.readouterr().out
    # Only the new finding is active; the old two stay baselined.
    assert "1 finding(s)" in out and "2 baselined" in out


def test_baselined_findings_in_json_section(dirty_file, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main([
        "lint", "--write-baseline", str(baseline), str(dirty_file),
    ]) == 0
    capsys.readouterr()
    assert main([
        "lint", "--format", "json", "--baseline", str(baseline),
        str(dirty_file),
    ]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["summary"]["baselined"] == 2
    assert document["findings"] == []
    assert {f["rule"] for f in document["baselined"]} == {
        "DET001", "DET004",
    }


def test_missing_baseline_file_is_usage_error(dirty_file):
    with pytest.raises(SystemExit) as excinfo:
        main(["lint", "--baseline", "no-such-baseline.json",
              str(dirty_file)])
    assert excinfo.value.code == 2


def test_overlapping_paths_do_not_double_report(dirty_file, capsys):
    parent = dirty_file.parent
    assert main(["lint", str(parent), str(dirty_file)]) == 1
    document_args = ["lint", "--format", "json", str(parent),
                     str(dirty_file)]
    capsys.readouterr()
    assert main(document_args) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["files_checked"] == 1
    assert len(document["findings"]) == 2
