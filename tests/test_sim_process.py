"""Unit tests for generator-based processes."""

import pytest

from repro.sim.kernel import Signal
from repro.sim.process import Process, Timeout, Wait


class TestTimeout:
    def test_timeout_advances_clock(self, sim):
        log = []

        def body():
            yield Timeout(1.0)
            log.append(sim.now)
            yield Timeout(2.0)
            log.append(sim.now)

        Process(sim, body())
        sim.run()
        assert log == [1.0, 3.0]

    def test_start_delay(self, sim):
        log = []

        def body():
            log.append(sim.now)
            yield Timeout(1.0)

        Process(sim, body(), delay=5.0)
        sim.run()
        assert log == [5.0]

    def test_result_and_done(self, sim):
        def body():
            yield Timeout(1.0)
            return 42

        process = Process(sim, body())
        assert not process.done
        sim.run()
        assert process.done
        assert process.result == 42

    def test_finished_signal_fires_once_with_result(self, sim):
        results = []

        def body():
            yield Timeout(1.0)
            return "ok"

        process = Process(sim, body())
        process.finished.subscribe(results.append)
        sim.run()
        assert results == ["ok"]


class TestWait:
    def test_wait_receives_payload(self, sim):
        signal = Signal("s")
        log = []

        def body():
            payload = yield Wait(signal)
            log.append(payload)

        Process(sim, body())
        sim.run()
        sim.schedule(1.0, lambda: signal.fire("hello"))
        sim.run()
        assert log == ["hello"]

    def test_wait_timeout_returns_sentinel(self, sim):
        signal = Signal("never")
        log = []

        def body():
            payload = yield Wait(signal, timeout=3.0)
            log.append(payload)
            log.append(sim.now)

        Process(sim, body())
        sim.run()
        assert log == [Wait.TIMED_OUT, 3.0]

    def test_signal_before_timeout_wins(self, sim):
        signal = Signal("s")
        log = []

        def body():
            payload = yield Wait(signal, timeout=10.0)
            log.append(payload)

        Process(sim, body())
        sim.schedule(1.0, lambda: signal.fire("fast"))
        sim.run()
        assert log == ["fast"]
        # The timeout event must not fire afterwards.
        assert sim.peek() is None

    def test_second_fire_does_not_double_resume(self, sim):
        signal = Signal("s")
        log = []

        def body():
            payload = yield Wait(signal)
            log.append(payload)
            yield Timeout(100.0)

        Process(sim, body())
        sim.schedule(1.0, lambda: signal.fire("a"))
        sim.schedule(2.0, lambda: signal.fire("b"))
        sim.run()
        assert log == ["a"]


class TestInterrupt:
    def test_interrupt_stops_process(self, sim):
        log = []

        def body():
            yield Timeout(1.0)
            log.append("ran")

        process = Process(sim, body())
        process.interrupt()
        sim.run()
        assert log == []
        assert process.done

    def test_interrupt_done_process_is_noop(self, sim):
        def body():
            yield Timeout(1.0)
            return 1

        process = Process(sim, body())
        sim.run()
        process.interrupt()
        assert process.result == 1

    def test_interrupt_while_waiting_unsubscribes(self, sim):
        signal = Signal("s")
        log = []

        def body():
            payload = yield Wait(signal)
            log.append(payload)

        process = Process(sim, body())
        sim.run()
        process.interrupt()
        signal.fire("late")
        assert log == []


class TestErrors:
    def test_bad_directive_raises(self, sim):
        def body():
            yield "not a directive"

        Process(sim, body())
        with pytest.raises(TypeError):
            sim.run()
