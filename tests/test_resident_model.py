"""Unit tests for the live resident process (through a full system)."""

import pytest

from repro.adls.tea_making import POT, TEACUP
from repro.core.config import CoReDAConfig
from repro.core.system import CoReDA
from repro.resident.compliance import ComplianceModel
from repro.resident.dementia import DementiaProfile, ErrorKind, ScriptedError


@pytest.fixture
def system(tea_definition):
    system = CoReDA.build(tea_definition, CoReDAConfig(seed=5))
    system.train_offline(episodes=120)
    return system


RELIABLE_HANDLING = {POT.tool_id: 6.0, TEACUP.tool_id: 5.0}


class TestErrorFreeEpisode:
    def test_completes_without_reminders(self, system):
        resident = system.create_resident(handling_overrides=RELIABLE_HANDLING)
        outcome = system.run_episode(resident)
        assert outcome.completed
        assert outcome.reminders_seen == 0
        assert outcome.duration > 0


class TestWrongToolEpisode:
    def test_wrong_tool_guided_back(self, system):
        resident = system.create_resident(
            compliance=ComplianceModel.perfect(),
            error_script={
                1: ScriptedError(ErrorKind.WRONG_TOOL, wrong_tool_id=TEACUP.tool_id)
            },
            handling_overrides=RELIABLE_HANDLING,
        )
        outcome = system.run_episode(resident)
        assert outcome.completed
        assert outcome.reminders_seen >= 1
        assert outcome.reminders_followed >= 1
        assert outcome.self_recoveries == 0


class TestStallEpisode:
    def test_stall_prompted_through(self, system):
        resident = system.create_resident(
            compliance=ComplianceModel.perfect(),
            error_script={2: ScriptedError(ErrorKind.STALL)},
            handling_overrides=RELIABLE_HANDLING,
        )
        outcome = system.run_episode(resident)
        assert outcome.completed
        assert outcome.reminders_followed >= 1


class TestSevereDementiaEpisode:
    def test_multiple_errors_still_complete(self, system):
        resident = system.create_resident(
            compliance=ComplianceModel.perfect(),
            dementia=DementiaProfile.from_severity(0.8),
            handling_overrides=RELIABLE_HANDLING,
            name="severe",
        )
        outcome = system.run_episode(resident, horizon=3600.0)
        assert outcome.completed


class TestPerseverationEpisode:
    def test_perseveration_presents_as_stall_and_recovers(self, system):
        from repro.resident.dementia import ErrorKind, ScriptedError

        resident = system.create_resident(
            compliance=ComplianceModel.perfect(),
            error_script={2: ScriptedError(ErrorKind.PERSEVERATE)},
            handling_overrides=RELIABLE_HANDLING,
            name="perseverator",
        )
        before = len(system.reminding.reminders)
        outcome = system.run_episode(resident, horizon=3600.0)
        assert outcome.completed
        # Re-handling the previous tool emits no step change, so the
        # system sees a stall and prompts the expected next step.
        new = system.reminding.reminders[before:]
        assert any(r.reason.name == "STALL" for r in new)
        assert outcome.reminders_followed >= 1
