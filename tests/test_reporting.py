"""Unit tests for caregiver reporting."""

from repro.core.adl import ReminderLevel
from repro.core.bus import EventBus
from repro.core.events import (
    EpisodeCompletedEvent,
    PraiseEvent,
    ReminderEvent,
    TriggerReason,
)
from repro.core.session import SessionLog
from repro.reporting.caregiver import CaregiverReport


def reminder(tool_id=2, level=ReminderLevel.MINIMAL,
             reason=TriggerReason.STALL, time=1.0):
    return ReminderEvent(
        time=time, tool_id=tool_id, level=level, reason=reason,
        message="m", picture="p",
    )


def build_session(reminders, completions=2, praises=1):
    bus = EventBus()
    session = SessionLog().attach(bus)
    for event in reminders:
        bus.publish(event)
    for index in range(completions):
        bus.publish(
            EpisodeCompletedEvent(
                time=10.0 * (index + 1), adl_name="tea-making",
                steps_taken=4, reminders_issued=len(reminders) // max(completions, 1),
            )
        )
    for _ in range(praises):
        bus.publish(PraiseEvent(time=5.0, step_id=2, message="Excellent!"))
    return session


class TestAggregation:
    def test_counts(self, tea_adl):
        session = build_session(
            [
                reminder(2, ReminderLevel.MINIMAL, TriggerReason.STALL),
                reminder(2, ReminderLevel.SPECIFIC, TriggerReason.STALL),
                reminder(3, ReminderLevel.MINIMAL, TriggerReason.WRONG_TOOL),
            ]
        )
        report = CaregiverReport.from_session(session, tea_adl,
                                              caregiver_alerts=1)
        assert report.episodes_completed == 2
        assert report.reminders_total == 3
        assert report.minimal_reminders == 2
        assert report.specific_reminders == 1
        assert report.stall_reminders == 2
        assert report.wrong_tool_reminders == 1
        assert report.praises == 1
        assert report.caregiver_alerts == 1

    def test_struggles_sorted_by_reminder_count(self, tea_adl):
        session = build_session(
            [reminder(3), reminder(3), reminder(3), reminder(2)]
        )
        report = CaregiverReport.from_session(session, tea_adl)
        assert report.struggles[0].step_name == "Pour tea into tea cup"
        assert report.struggles[0].reminders == 3
        assert report.struggles[1].reminders == 1

    def test_independence_ratio(self, tea_adl):
        session = build_session(
            [
                reminder(2, ReminderLevel.MINIMAL),
                reminder(2, ReminderLevel.MINIMAL),
                reminder(2, ReminderLevel.SPECIFIC),
            ]
        )
        report = CaregiverReport.from_session(session, tea_adl)
        assert report.independence_ratio == 2 / 3

    def test_independence_none_without_reminders(self, tea_adl):
        report = CaregiverReport.from_session(build_session([]), tea_adl)
        assert report.independence_ratio is None


class TestRendering:
    def test_text_contains_key_lines(self, tea_adl):
        session = build_session([reminder(2)])
        report = CaregiverReport.from_session(session, tea_adl)
        text = report.to_text()
        assert "Caregiver report — tea-making" in text
        assert "activities completed:    2" in text
        assert "Pour hot water into kettle" in text

    def test_text_without_struggles(self, tea_adl):
        report = CaregiverReport.from_session(build_session([]), tea_adl)
        text = report.to_text()
        assert "no reminders needed" in text
        assert "Step needing help" not in text


class TestEndToEnd:
    def test_report_from_live_system(self, tea_definition):
        from repro.adls.tea_making import POT, TEACUP
        from repro.core.config import CoReDAConfig
        from repro.core.system import CoReDA
        from repro.resident.compliance import ComplianceModel
        from repro.resident.dementia import ErrorKind, ScriptedError

        system = CoReDA.build(tea_definition, CoReDAConfig(seed=21))
        system.train_offline()
        resident = system.create_resident(
            compliance=ComplianceModel.perfect(),
            error_script={2: ScriptedError(ErrorKind.STALL)},
            handling_overrides={POT.tool_id: 6.0, TEACUP.tool_id: 5.0},
        )
        system.run_episode(resident)
        report = CaregiverReport.from_session(
            system.session, tea_definition.adl,
            caregiver_alerts=system.reminding.caregiver_alerts,
        )
        assert report.episodes_completed == 1
        assert report.stall_reminders >= 1
        assert "tea-making" in report.to_text()
