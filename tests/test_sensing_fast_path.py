"""Equivalence smoke tests: block fast path vs reference loop.

The block-sampling fast path (``SensingConfig.batch_samples > 1``)
must be *byte-identical* to the per-sample reference loop -- same
trace events at the same times, same frames, same EEPROM contents --
for any resident behaviour, including regime changes that land in the
middle of a pre-drawn block.  These tests replay identical worlds
under both firmwares and compare the full observable streams.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.adl import SensorType, Tool
from repro.core.config import CoReDAConfig, RadioConfig, SensingConfig
from repro.evalx.scenario import run_tea_scenario
from repro.sensors.pavenet import PavenetNode
from repro.sensors.radio import BASE_STATION_UID, RadioMedium
from repro.sensors.signals import SignalProfile, SignalSource
from repro.sim.kernel import Simulator
from repro.sim.tracing import TraceRecorder


def build_node(batch_samples):
    """One complete node world with a deterministic seed."""
    sim = Simulator()
    trace = TraceRecorder()
    radio = RadioMedium(
        sim, RadioConfig(loss_probability=0.05), np.random.default_rng(0)
    )
    source = SignalSource(
        SignalProfile(burst_probability=0.7), np.random.default_rng(1)
    )
    node = PavenetNode(
        sim=sim,
        tool=Tool(7, "cup", SensorType.ACCELEROMETER),
        source=source,
        radio=radio,
        config=SensingConfig(batch_samples=batch_samples),
        trace=trace,
    )
    received = []
    radio.attach(
        BASE_STATION_UID,
        lambda frame: received.append(
            (sim.now, frame.src_uid, frame.kind, frame.sequence)
        ),
    )
    return sim, node, source, trace, received


def run_script(batch_samples, script):
    """Run one node under ``script``: (time, action, kwargs) tuples."""
    sim, node, source, trace, received = build_node(batch_samples)
    node.start()
    for time, action, kwargs in script:
        if action == "begin":
            sim.schedule_at(
                time, (lambda t=time, kw=kwargs: source.begin_use(t, **kw))
            )
        elif action == "end":
            sim.schedule_at(time, source.end_use)
        elif action == "stop":
            sim.schedule_at(time, node.stop)
    sim.run_until(20.0)
    return {
        "trace": trace.entries(),
        "received": received,
        "eeprom": node.eeprom.records(),
        "reports": node.usage_reports,
        "seen": None,  # samples_seen intentionally excluded: the block
        # sampler legitimately pre-draws ahead of the clock
    }


def assert_streams_equal(script):
    scalar = run_script(1, script)
    batched = run_script(10, script)
    assert batched["trace"] == scalar["trace"]
    assert batched["received"] == scalar["received"]
    assert batched["eeprom"] == scalar["eeprom"]
    assert batched["reports"] == scalar["reports"]


class TestNodeEquivalence:
    def test_idle_node(self):
        assert_streams_equal([])

    def test_simple_use_with_finite_duration(self):
        # Finite durations are known at block start: the block sampler
        # truncates at the expiry, no invalidation needed.
        assert_streams_equal([(0.0, "begin", {"duration": 5.0})])

    def test_duration_expiring_mid_block(self):
        # Expiry at t=1.23 falls inside the second 1 s block.
        assert_streams_equal([(0.73, "begin", {"duration": 0.5})])

    def test_end_use_invalidates_block_tail(self):
        # end_use at an off-grid time mid-block: the pre-drawn active
        # tail is stale and must be re-drawn as idle samples.
        assert_streams_equal(
            [(0.0, "begin", {}), (2.37, "end", {})]
        )

    def test_begin_use_invalidates_block_tail(self):
        # begin_use mid-block: the pre-drawn idle tail becomes active.
        assert_streams_equal(
            [(1.62, "begin", {}), (6.91, "end", {})]
        )

    def test_rapid_regime_flapping(self):
        # Multiple invalidations, some within the same block.
        assert_streams_equal(
            [
                (0.31, "begin", {}),
                (0.58, "end", {}),
                (0.84, "begin", {"duration": 1.7}),
                (3.05, "begin", {"duration": 4.0}),
                (5.5, "end", {}),
                (11.02, "begin", {}),
                (11.96, "end", {}),
            ]
        )

    def test_stop_mid_block_cancels_pending_reports(self):
        assert_streams_equal(
            [(0.0, "begin", {}), (3.14, "stop", {})]
        )

    def test_batch_sizes_beyond_default(self):
        script = [(0.42, "begin", {"duration": 3.3}), (7.7, "begin", {}),
                  (9.33, "end", {})]
        scalar = run_script(1, script)
        for batch in (2, 5, 25):
            batched = run_script(batch, script)
            assert batched["trace"] == scalar["trace"], f"batch={batch}"
            assert batched["received"] == scalar["received"]


class TestScenarioEquivalence:
    """The tier-1 gate from the issue: one full Figure 1 scenario,
    batch_samples=1 vs 10, identical trace event lists."""

    @pytest.fixture(scope="class")
    def results(self):
        scalar = run_tea_scenario(sensing=SensingConfig(batch_samples=1))
        batched = run_tea_scenario(sensing=SensingConfig(batch_samples=10))
        return scalar, batched

    def test_identical_timelines(self, results):
        scalar, batched = results
        assert batched.timeline == scalar.timeline

    def test_identical_anchors(self, results):
        scalar, batched = results
        for field in (
            "completed",
            "wrong_tool_prompt_time",
            "first_praise_time",
            "stall_prompt_time",
            "second_praise_time",
            "wrong_tool_methods",
            "stall_methods",
        ):
            assert getattr(batched, field) == getattr(scalar, field), field

    def test_default_config_uses_fast_path(self, results):
        scalar, _ = results
        default = run_tea_scenario()
        assert SensingConfig().batch_samples > 1
        assert default.timeline == scalar.timeline


class TestExtractPrecisionEquivalence:
    def test_table3_cell_identical(self):
        from repro.adls.tea_making import tea_making_definition
        from repro.evalx.extract_precision import run_extract_precision

        definition = tea_making_definition()

        def rows(batch):
            config = replace(
                CoReDAConfig(), sensing=SensingConfig(batch_samples=batch)
            )
            result = run_extract_precision(
                [definition], samples_per_step=4, config=config, seed=0
            )
            return [
                (row.step_name, row.detections, row.trials, row.precision)
                for row in result.rows
            ]

        assert rows(10) == rows(1)
