"""Function-level tests for the ablation helpers (small parameters).

The benches run these at paper scale; here each helper is exercised
quickly so a regression in table construction or parsing surfaces in
the unit suite, not only under --benchmark-only.
"""

import pytest

from repro.evalx.ablations import (
    adaptation_speed,
    detector_sweep,
    dyna_sweep,
    lambda_sweep,
    multi_routine_comparison,
    sarsa_comparison,
    wrong_reward_sweep,
)
from repro.evalx.sensitivity import alpha_sweep, epsilon_sweep


class TestSweepTables:
    def test_lambda_sweep_rows(self, tea_adl):
        table = lambda_sweep(tea_adl, lambdas=(0.0, 0.7), seeds=(0, 1))
        assert "0.0" in table and "0.7" in table
        assert "Mean iterations" in table

    def test_wrong_reward_sweep_shows_collapse(self, tea_adl):
        table = wrong_reward_sweep(
            tea_adl, wrong_rewards=(0.0, 100.0), seeds=(0,)
        )
        lines = table.splitlines()
        zero_row = next(line for line in lines if line.startswith("0 "))
        hundred_row = next(line for line in lines if line.startswith("100"))
        assert "100.0%" in zero_row
        assert "100.0%" not in hundred_row

    def test_detector_sweep_monotone(self):
        table = detector_sweep(ks=(1, 3, 5), trials=60, seed=0)
        rates = []
        for line in table.splitlines():
            cells = [cell.strip() for cell in line.split("|")]
            if len(cells) == 3 and "-of-" in cells[0]:
                rates.append(float(cells[1].rstrip("%")))
        assert rates == sorted(rates, reverse=True)

    def test_dyna_sweep_has_reference_row(self, tea_adl):
        table = dyna_sweep(tea_adl, planning_steps=(0,), seeds=(0, 1))
        assert "TD(lambda) Q" in table
        assert "Dyna-Q (0 planning steps)" in table

    def test_sarsa_comparison_rows(self, tea_adl):
        table = sarsa_comparison(tea_adl, seeds=(0, 1))
        assert "Watkins Q(lambda)" in table
        assert "SARSA(lambda)" in table

    def test_alpha_sweep_all_converge(self, tea_adl):
        table = alpha_sweep(tea_adl, alphas=(0.2, 0.5), seeds=(0, 1))
        assert table.count("100%") >= 2

    def test_epsilon_sweep_constant_never_converges(self, tea_adl):
        table = epsilon_sweep(
            tea_adl, schedules=((0.2, 0.978), (0.4, 1.0)), seeds=(0, 1)
        )
        always_row = next(
            line for line in table.splitlines() if "decay=1.0" in line
        )
        assert "| -" in always_row


class TestExtensionTables:
    def test_multi_routine_table(self):
        table = multi_routine_comparison(episodes_per_routine=10, seed=0)
        assert "routine A" in table and "routine B" in table

    def test_adaptation_speed_small(self, tea_adl):
        table = adaptation_speed(tea_adl, epsilons=(0.1,), seeds=(0,))
        assert "0.10" in table

    def test_adaptation_speed_needs_three_steps(self, registry):
        # A 2-step ADL cannot be permuted.
        from repro.core.adl import ADL, ADLStep, SensorType, Tool

        tiny = ADL(
            "tiny",
            [
                ADLStep("a", Tool(71, "a", SensorType.ACCELEROMETER)),
                ADLStep("b", Tool(72, "b", SensorType.ACCELEROMETER)),
            ],
        )
        with pytest.raises(ValueError):
            adaptation_speed(tiny)


class TestEscalationAblation:
    def test_table_shape(self, registry):
        from repro.evalx.ablations import escalation_ablation

        table = escalation_ablation(
            registry.get("tea-making"), episodes=2
        )
        assert "never escalate" in table
        assert "Reminders/episode" in table
