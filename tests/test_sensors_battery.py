"""Unit tests for the node energy model."""

import numpy as np
import pytest

from repro.core.adl import SensorType, Tool
from repro.core.config import RadioConfig, SensingConfig
from repro.sensors.battery import (
    Battery,
    PowerProfile,
    estimate_lifetime_days,
)
from repro.sensors.pavenet import PavenetNode
from repro.sensors.radio import RadioMedium
from repro.sensors.signals import SignalProfile, SignalSource


class TestBattery:
    def test_drain_accounting(self):
        battery = Battery(capacity_mj=100.0)
        assert battery.drain(30.0)
        assert battery.remaining_fraction == pytest.approx(0.7)

    def test_depletion(self):
        battery = Battery(capacity_mj=10.0)
        assert not battery.drain(15.0)
        assert battery.depleted
        assert battery.remaining_fraction == 0.0

    def test_depleted_battery_stays_depleted(self):
        battery = Battery(capacity_mj=1.0)
        battery.drain(2.0)
        assert not battery.drain(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Battery(capacity_mj=0.0)
        with pytest.raises(ValueError):
            Battery(capacity_mj=10.0).drain(-1.0)
        with pytest.raises(ValueError):
            PowerProfile(sample_cost_mj=-1.0)


class TestLifetimeEstimate:
    def test_lower_sampling_rate_lives_longer(self):
        profile = PowerProfile()
        assert estimate_lifetime_days(profile, 2.0) > estimate_lifetime_days(
            profile, 10.0
        )

    def test_ballpark_at_10hz(self):
        # PIC18+CC1000 on two AA cells: several hundred days at 10 Hz.
        days = estimate_lifetime_days(PowerProfile(), 10.0)
        assert 100 < days < 2000

    def test_sampling_rate_positive(self):
        with pytest.raises(ValueError):
            estimate_lifetime_days(PowerProfile(), 0.0)


class TestNodeIntegration:
    @pytest.fixture
    def node(self, sim):
        radio = RadioMedium(
            sim, RadioConfig(loss_probability=0.0), np.random.default_rng(0)
        )
        tool = Tool(7, "cup", SensorType.ACCELEROMETER)
        source = SignalSource(
            SignalProfile(burst_probability=0.9), np.random.default_rng(1)
        )
        # Tiny battery: ~40 samples' worth of energy.
        battery = Battery(capacity_mj=2.0)
        return PavenetNode(
            sim=sim,
            tool=tool,
            source=source,
            radio=radio,
            config=SensingConfig(),
            battery=battery,
        )

    def test_node_dies_when_battery_depletes(self, sim, node):
        node.start()
        sim.run_until(60.0)
        assert node.battery.depleted
        # The firmware loop exited: sampling stopped well before 60 s
        # of 10 Hz sampling (600 samples >> 40 sample budget).
        assert node.detector.samples_seen < 100

    def test_dead_node_reports_nothing(self, sim, node):
        node.start()
        sim.run_until(10.0)  # battery dies within ~4 s
        node.source.begin_use(sim.now, duration=5.0)
        reports_at_death = node.usage_reports
        sim.run_until(20.0)
        assert node.usage_reports == reports_at_death

    def test_mains_powered_node_never_dies(self, sim):
        radio = RadioMedium(
            sim, RadioConfig(loss_probability=0.0), np.random.default_rng(0)
        )
        tool = Tool(8, "pot", SensorType.PRESSURE)
        source = SignalSource(SignalProfile(), np.random.default_rng(1))
        node = PavenetNode(
            sim=sim, tool=tool, source=source, radio=radio,
            config=SensingConfig(),
        )
        node.start()
        sim.run_until(120.0)
        assert node.running
        assert node.detector.samples_seen > 1000
