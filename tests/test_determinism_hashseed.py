"""Runtime determinism sanitizer: PYTHONHASHSEED must not matter.

The static rules (DET003 in particular) exist to keep ``set``/``dict``
hash order out of the event stream.  This test closes the loop at
runtime: the Figure 1 tea scenario is executed in two fresh
interpreters with *different* ``PYTHONHASHSEED`` values -- so any
hash-order-dependent iteration would reshuffle -- and every observable
stream (trace entries, base-station frame count, per-node EEPROM
records) must come out byte-identical.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Runs the Figure 1 scenario and prints a canonical dump of every
# observable stream.  repr() of floats round-trips exactly, so equal
# output bytes mean bit-identical timestamps and values.
DUMP_SCRIPT = """
from repro.evalx.scenario import build_tea_scenario

system, resident = build_tea_scenario(seed=11)
outcome = system.run_episode(resident, horizon=600.0)
print("completed", outcome.completed)
for entry in system.trace.entries():
    print(entry.time, entry.category, sorted(entry.payload.items()))
print("frames", system.network.base_station.frames_received)
for tool in system.adl.tools:
    node = system.network.node(tool.tool_id)
    for record in node.eeprom.records():
        print("eeprom", tool.tool_id, record.timestamp,
              record.node_uid, record.sequence)
"""


def _run_scenario(hash_seed: str) -> bytes:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = str(REPO / "src")
    result = subprocess.run(
        [sys.executable, "-c", DUMP_SCRIPT],
        env=env,
        cwd=str(REPO),
        capture_output=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr.decode()
    return result.stdout


def test_tea_scenario_is_hashseed_invariant():
    first = _run_scenario("0")
    second = _run_scenario("12345")
    assert b"completed True" in first
    assert b"frames" in first and b"eeprom" in first
    assert first == second
