"""Unit tests for Expected SARSA."""

import numpy as np
import pytest

from repro.rl.expected_sarsa import ExpectedSarsaLearner

ACTIONS = ["left", "right"]


class TestExpectedValue:
    def test_mixture_of_greedy_and_uniform(self):
        learner = ExpectedSarsaLearner(epsilon=0.2)
        learner.q.set("s", "left", 10.0)
        learner.q.set("s", "right", 0.0)
        expected = 0.8 * 10.0 + 0.2 * 5.0
        assert learner.expected_value("s", ACTIONS) == pytest.approx(expected)

    def test_epsilon_zero_equals_max(self):
        learner = ExpectedSarsaLearner(epsilon=0.0)
        learner.q.set("s", "left", 3.0)
        learner.q.set("s", "right", 7.0)
        assert learner.expected_value("s", ACTIONS) == 7.0

    def test_epsilon_one_equals_mean(self):
        learner = ExpectedSarsaLearner(epsilon=1.0)
        learner.q.set("s", "left", 2.0)
        learner.q.set("s", "right", 6.0)
        assert learner.expected_value("s", ACTIONS) == 4.0

    def test_empty_actions_rejected(self):
        with pytest.raises(ValueError):
            ExpectedSarsaLearner().expected_value("s", [])


class TestUpdates:
    def test_terminal_update(self):
        learner = ExpectedSarsaLearner(learning_rate=0.5)
        delta = learner.observe("s", "right", 10.0, "t", ACTIONS, done=True)
        assert delta == 10.0
        assert learner.q.value("s", "right") == 5.0

    def test_bootstrap_uses_expectation(self):
        learner = ExpectedSarsaLearner(
            learning_rate=1.0, discount=0.5, epsilon=0.2
        )
        learner.q.set("s2", "left", 10.0)
        learner.q.set("s2", "right", 0.0)
        learner.observe("s1", "left", 1.0, "s2", ACTIONS, done=False)
        expected_next = 0.8 * 10.0 + 0.2 * 5.0
        assert learner.q.value("s1", "left") == pytest.approx(
            1.0 + 0.5 * expected_next
        )

    def test_epsilon_zero_matches_q_learning_target(self):
        learner = ExpectedSarsaLearner(
            learning_rate=1.0, discount=0.5, epsilon=0.0
        )
        learner.q.set("s2", "left", 4.0)
        learner.q.set("s2", "right", 8.0)
        learner.observe("s1", "left", 1.0, "s2", ACTIONS, done=False)
        assert learner.q.value("s1", "left") == pytest.approx(1.0 + 0.5 * 8.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExpectedSarsaLearner(discount=1.0)
        with pytest.raises(ValueError):
            ExpectedSarsaLearner(epsilon=1.5)


class TestConvergence:
    def test_learns_chain(self, rng):
        learner = ExpectedSarsaLearner(
            learning_rate=0.3, discount=0.9, epsilon=0.3
        )
        for _ in range(400):
            learner.begin_episode()
            state = "s1"
            for _ in range(20):
                action, _ = learner.select_action(state, ACTIONS, rng)
                if action == "right":
                    next_state = "s2" if state == "s1" else "goal"
                    done = next_state == "goal"
                    reward = 10.0 if done else 0.0
                else:
                    next_state, done, reward = state, False, 0.0
                learner.observe(state, action, reward, next_state, ACTIONS, done)
                if done:
                    break
                state = next_state
        assert learner.greedy_action("s1", ACTIONS) == "right"
        assert learner.greedy_action("s2", ACTIONS) == "right"
