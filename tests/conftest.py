"""Shared fixtures for the CoReDA test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adls.library import default_registry
from repro.core.config import CoReDAConfig, PlanningConfig
from repro.sim.kernel import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture(scope="session")
def registry():
    return default_registry()


@pytest.fixture(scope="session")
def tea_definition(registry):
    return registry.get("tea-making")


@pytest.fixture(scope="session")
def tooth_definition(registry):
    return registry.get("tooth-brushing")


@pytest.fixture
def tea_adl(tea_definition):
    return tea_definition.adl


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture
def planning_config() -> PlanningConfig:
    return PlanningConfig()


@pytest.fixture
def config() -> CoReDAConfig:
    return CoReDAConfig(seed=0)
