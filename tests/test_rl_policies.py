"""Unit tests for behaviour policies."""

import numpy as np
import pytest

from repro.rl.policies import EpsilonGreedyPolicy, GreedyPolicy, SoftmaxPolicy
from repro.rl.qtable import QTable
from repro.rl.schedules import ExponentialDecay


@pytest.fixture
def q():
    table = QTable()
    table.set("s", "best", 10.0)
    table.set("s", "mid", 5.0)
    table.set("s", "worst", 0.0)
    return table


ACTIONS = ["best", "mid", "worst"]


class TestGreedy:
    def test_always_argmax_never_exploratory(self, q, rng):
        policy = GreedyPolicy()
        for _ in range(10):
            action, exploratory = policy.select(q, "s", ACTIONS, rng)
            assert action == "best"
            assert not exploratory


class TestEpsilonGreedy:
    def test_epsilon_zero_is_greedy(self, q, rng):
        policy = EpsilonGreedyPolicy(0.0)
        for _ in range(20):
            action, exploratory = policy.select(q, "s", ACTIONS, rng)
            assert action == "best"
            assert not exploratory

    def test_epsilon_one_explores_uniformly(self, q, rng):
        policy = EpsilonGreedyPolicy(1.0)
        picks = [policy.select(q, "s", ACTIONS, rng)[0] for _ in range(600)]
        for action in ACTIONS:
            assert picks.count(action) > 120

    def test_exploratory_flag_only_when_deviating(self, q, rng):
        policy = EpsilonGreedyPolicy(1.0)
        for _ in range(100):
            action, exploratory = policy.select(q, "s", ACTIONS, rng)
            assert exploratory == (action != "best")

    def test_schedule_respected(self, q, rng):
        policy = EpsilonGreedyPolicy(ExponentialDecay(1.0, 0.5))
        late_picks = [
            policy.select(q, "s", ACTIONS, rng, step=50)[0] for _ in range(50)
        ]
        assert all(action == "best" for action in late_picks)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            EpsilonGreedyPolicy(1.5)

    def test_empty_actions_raises(self, q, rng):
        with pytest.raises(ValueError):
            EpsilonGreedyPolicy(0.1).select(q, "s", [], rng)


class TestSoftmax:
    def test_low_temperature_is_greedy(self, q, rng):
        policy = SoftmaxPolicy(0.01)
        picks = [policy.select(q, "s", ACTIONS, rng)[0] for _ in range(50)]
        assert all(action == "best" for action in picks)

    def test_high_temperature_near_uniform(self, q, rng):
        policy = SoftmaxPolicy(1e6)
        picks = [policy.select(q, "s", ACTIONS, rng)[0] for _ in range(900)]
        for action in ACTIONS:
            assert picks.count(action) > 200

    def test_probabilities_follow_values(self, q, rng):
        policy = SoftmaxPolicy(5.0)
        picks = [policy.select(q, "s", ACTIONS, rng)[0] for _ in range(2000)]
        assert picks.count("best") > picks.count("mid") > picks.count("worst")

    def test_numerical_stability_with_huge_values(self, rng):
        table = QTable()
        table.set("s", "a", 1e9)
        table.set("s", "b", 0.0)
        action, _ = SoftmaxPolicy(1.0).select(table, "s", ["a", "b"], rng)
        assert action == "a"

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            SoftmaxPolicy(0.0)
