"""End-to-end integration tests: the full pipeline, no injection shortcuts.

Every test here drives physical signal sources through node firmware,
the 3-of-10 detector, the lossy radio, step extraction, the trained
planner and the reminding subsystem -- the complete Figure 2 loop.
"""

import pytest

from repro.adls.coffee_making import KETTLE_SWITCH
from repro.adls.tea_making import KETTLE, POT, TEABOX, TEACUP
from repro.core.config import CoReDAConfig
from repro.core.events import TriggerReason
from repro.core.system import CoReDA
from repro.resident.compliance import ComplianceModel
from repro.resident.dementia import ErrorKind, ScriptedError

RELIABLE = {POT.tool_id: 6.0, TEACUP.tool_id: 5.0}


@pytest.fixture(scope="module")
def trained_system(tea_definition):
    system = CoReDA.build(tea_definition, CoReDAConfig(seed=42))
    system.train_offline(episodes=120)
    system.start()
    return system


class TestFullPipeline:
    def test_error_free_episode_stays_quiet(self, trained_system):
        system = trained_system
        resident = system.create_resident(
            handling_overrides=RELIABLE, name="quiet"
        )
        reminders_before = len(system.reminding.reminders)
        outcome = system.run_episode(resident)
        assert outcome.completed
        assert len(system.reminding.reminders) == reminders_before

    def test_wrong_tool_full_loop(self, trained_system):
        system = trained_system
        resident = system.create_resident(
            compliance=ComplianceModel.perfect(),
            error_script={
                1: ScriptedError(ErrorKind.WRONG_TOOL, wrong_tool_id=TEACUP.tool_id)
            },
            handling_overrides=RELIABLE,
            name="wrong-tool",
        )
        before = len(system.reminding.reminders)
        outcome = system.run_episode(resident)
        assert outcome.completed
        new = system.reminding.reminders[before:]
        wrong = [r for r in new if r.reason is TriggerReason.WRONG_TOOL]
        assert wrong
        assert wrong[0].tool_id == POT.tool_id
        assert wrong[0].wrong_tool_id == TEACUP.tool_id
        # The physical LEDs blinked: green on the pot, red on the cup.
        assert system.network.node(POT.tool_id).leds["green"].total_blinks > 0
        assert system.network.node(TEACUP.tool_id).leds["red"].total_blinks > 0

    def test_display_showed_prompt_text(self, trained_system):
        system = trained_system
        resident = system.create_resident(
            compliance=ComplianceModel.perfect(),
            error_script={2: ScriptedError(ErrorKind.STALL)},
            handling_overrides=RELIABLE,
            name="stall",
        )
        shown_before = len(system.display)
        outcome = system.run_episode(resident)
        assert outcome.completed
        texts = [e.text for e in system.display.history[shown_before:]]
        assert any("kettle" in text for text in texts)
        assert "Excellent!" in texts

    def test_radio_stats_accumulate(self, trained_system):
        assert trained_system.network.medium.stats.delivered > 0


class TestGeneralization:
    """The paper's claim: a new ADL needs only its definition module."""

    @pytest.mark.parametrize(
        "adl_name", ["hand-washing", "coffee-making", "dressing"]
    )
    def test_new_adl_end_to_end(self, registry, adl_name):
        definition = registry.get(adl_name)
        system = CoReDA.build(definition, CoReDAConfig(seed=9))
        result = system.train_offline(episodes=120)
        assert result.convergence[0.95] is not None
        # Give brief-handling tools deliberate handling so the episode
        # is not derailed by a (legitimate) sensing miss.
        overrides = {
            step.step_id: max(step.handling_duration, 5.0)
            for step in definition.adl.steps
        }
        resident = system.create_resident(handling_overrides=overrides)
        outcome = system.run_episode(resident, horizon=3600.0)
        assert outcome.completed

    def test_coffee_switch_short_press_is_weak_spot(self, registry):
        # Generalization carries the same physics: the kettle switch
        # (brief press) misses sometimes, like the paper's pot.
        from repro.evalx.extract_precision import run_extract_precision

        definition = registry.get("coffee-making")
        result = run_extract_precision([definition], samples_per_step=30, seed=1)
        switch_row = next(
            row for row in result.rows if "Switch" in row.step_name
        )
        others = [r.precision for r in result.rows if r is not switch_row]
        assert switch_row.precision <= min(others)


class TestDeterminism:
    def test_same_seed_same_trace(self, tea_definition):
        def run(seed):
            system = CoReDA.build(tea_definition, CoReDAConfig(seed=seed))
            system.train_offline(episodes=120)
            resident = system.create_resident(handling_overrides=RELIABLE)
            system.run_episode(resident)
            return [
                (round(e.time, 6), e.category) for e in system.trace.entries()
            ]

        assert run(7) == run(7)

    def test_different_seeds_diverge(self, tea_definition):
        def run(seed):
            system = CoReDA.build(tea_definition, CoReDAConfig(seed=seed))
            system.train_offline(episodes=120)
            resident = system.create_resident(handling_overrides=RELIABLE)
            outcome = system.run_episode(resident)
            return outcome.duration

        assert run(1) != run(2)
