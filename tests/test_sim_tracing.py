"""Unit tests for the trace recorder."""

import pytest

from repro.sim.tracing import TraceEntry, TraceRecorder


class TestEmit:
    def test_records_in_order(self):
        trace = TraceRecorder()
        trace.emit(1.0, "a", x=1)
        trace.emit(2.0, "b", y=2)
        assert [e.category for e in trace] == ["a", "b"]
        assert len(trace) == 2

    def test_out_of_order_rejected(self):
        trace = TraceRecorder()
        trace.emit(5.0, "a")
        with pytest.raises(ValueError):
            trace.emit(4.0, "b")

    def test_equal_times_allowed(self):
        trace = TraceRecorder()
        trace.emit(1.0, "a")
        trace.emit(1.0, "b")
        assert len(trace) == 2

    def test_disabled_recorder_drops(self):
        trace = TraceRecorder(enabled=False)
        trace.emit(1.0, "a")
        assert len(trace) == 0

    def test_payload_stored(self):
        trace = TraceRecorder()
        trace.emit(1.0, "a", tool_id=3, level="minimal")
        entry = trace.entries()[0]
        assert entry.payload == {"tool_id": 3, "level": "minimal"}


class TestQueries:
    @pytest.fixture
    def trace(self):
        trace = TraceRecorder()
        trace.emit(1.0, "reminder.prompt", tool=1)
        trace.emit(2.0, "sensing.step", step=2)
        trace.emit(3.0, "reminder.praise")
        trace.emit(4.0, "reminder.prompt", tool=3)
        return trace

    def test_prefix_filter(self, trace):
        assert len(trace.entries("reminder")) == 3
        assert len(trace.entries("reminder.prompt")) == 2

    def test_prefix_does_not_match_partial_words(self):
        trace = TraceRecorder()
        trace.emit(1.0, "reminders")
        assert trace.entries("reminder") == []

    def test_between(self, trace):
        entries = trace.between(2.0, 3.0)
        assert [e.category for e in entries] == ["sensing.step", "reminder.praise"]

    def test_first_and_last(self, trace):
        assert trace.first("reminder.prompt").time == 1.0
        assert trace.last("reminder.prompt").time == 4.0
        assert trace.first("nothing") is None
        assert trace.last("nothing") is None

    def test_count(self, trace):
        assert trace.count("reminder.prompt") == 2
        assert trace.count("nothing") == 0

    def test_clear_keeps_listeners(self, trace):
        seen = []
        trace.on_emit(seen.append)
        trace.clear()
        assert len(trace) == 0
        trace.emit(9.0, "x")
        assert len(seen) == 1


class TestListeners:
    def test_listener_called_per_entry(self):
        trace = TraceRecorder()
        seen = []
        trace.on_emit(lambda e: seen.append(e.category))
        trace.emit(1.0, "a")
        trace.emit(2.0, "b")
        assert seen == ["a", "b"]


class TestTraceEntry:
    def test_matches_exact_and_nested(self):
        entry = TraceEntry(1.0, "radio.delivered")
        assert entry.matches("radio")
        assert entry.matches("radio.delivered")
        assert not entry.matches("radio.dropped")


class TestPersistence:
    def test_jsonl_roundtrip(self, tmp_path):
        trace = TraceRecorder()
        trace.emit(1.0, "sensing.step", step_id=3, previous=0)
        trace.emit(2.5, "reminder.prompt", tool_id=2, level="minimal")
        path = tmp_path / "trace.jsonl"
        assert trace.save_jsonl(path) == 2
        restored = TraceRecorder.load_jsonl(path)
        assert len(restored) == 2
        assert restored.entries() == trace.entries()

    def test_jsonl_lines_are_parseable(self, tmp_path):
        import json

        trace = TraceRecorder()
        trace.emit(1.0, "a", x=1)
        path = tmp_path / "trace.jsonl"
        trace.save_jsonl(path)
        lines = path.read_text().strip().splitlines()
        assert json.loads(lines[0]) == {
            "time": 1.0,
            "category": "a",
            "payload": {"x": 1},
        }

    def test_empty_trace_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        TraceRecorder().save_jsonl(path)
        assert len(TraceRecorder.load_jsonl(path)) == 0
