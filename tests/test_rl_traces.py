"""Unit tests for eligibility traces."""

import pytest

from repro.rl.traces import EligibilityTraces, TraceKind


class TestVisit:
    def test_replacing_sets_to_one(self):
        traces = EligibilityTraces(TraceKind.REPLACING)
        traces.visit("s", "a")
        traces.visit("s", "a")
        assert traces.get("s", "a") == 1.0

    def test_accumulating_adds(self):
        traces = EligibilityTraces(TraceKind.ACCUMULATING)
        traces.visit("s", "a")
        traces.visit("s", "a")
        assert traces.get("s", "a") == 2.0

    def test_unvisited_is_zero(self):
        assert EligibilityTraces().get("s", "a") == 0.0


class TestDecay:
    def test_decay_multiplies(self):
        traces = EligibilityTraces()
        traces.visit("s", "a")
        traces.decay(0.5)
        assert traces.get("s", "a") == 0.5

    def test_tiny_traces_dropped(self):
        traces = EligibilityTraces(cutoff=1e-2)
        traces.visit("s", "a")
        for _ in range(10):
            traces.decay(0.5)
        assert len(traces) == 0

    def test_decay_zero_clears(self):
        traces = EligibilityTraces()
        traces.visit("s", "a")
        traces.visit("t", "b")
        traces.decay(0.0)
        assert len(traces) == 0


class TestResetItems:
    def test_reset(self):
        traces = EligibilityTraces()
        traces.visit("s", "a")
        traces.reset()
        assert len(traces) == 0

    def test_items_snapshot_allows_q_updates(self):
        traces = EligibilityTraces()
        traces.visit("s", "a")
        traces.visit("t", "b")
        seen = [key for key, _ in traces.items()]
        assert set(seen) == {("s", "a"), ("t", "b")}

    def test_negative_cutoff_rejected(self):
        with pytest.raises(ValueError):
            EligibilityTraces(cutoff=-1.0)
