"""The fleet layer: spec expansion, streaming reducers, executor.

The fleet inherits the repo's central invariant -- byte-identical
output at any ``--jobs`` -- and adds two of its own: per-home seeds
never move when the shard layout changes, and policy sharing trains
exactly the distinct (routine, seed class) combinations, not one
policy per home.
"""

from __future__ import annotations

import json
import math
import statistics

import pytest

from repro.cli import main
from repro.fleet import (
    FleetMetrics,
    FleetSpec,
    HomeReport,
    Welford,
    distinct_trainings,
    run_fleet,
)
from repro.sim.random import seeded_generator

#: Small but non-trivial: several shards, several seed classes, and
#: enough homes that routines repeat (so policy sharing is exercised).
SPEC = FleetSpec(
    adl_name="tea-making",
    homes=10,
    seed=0,
    episodes_per_home=1,
    training_episodes=40,
    seed_classes=2,
    shard_size=3,
)


@pytest.fixture(scope="module")
def tea_fleet_definition():
    from repro.adls.library import default_registry

    return default_registry().get("tea-making")


@pytest.fixture(scope="module")
def serial_result():
    return run_fleet(SPEC, jobs=1)


class TestFleetSpec:
    def test_expand_is_deterministic(self, tea_fleet_definition):
        first = SPEC.expand(tea_fleet_definition)
        second = SPEC.expand(tea_fleet_definition)
        assert first == second

    def test_home_seeds_are_distinct(self, tea_fleet_definition):
        homes = SPEC.expand(tea_fleet_definition)
        assert len({home.seed for home in homes}) == len(homes)

    def test_home_seeds_stable_under_shard_count_changes(
        self, tea_fleet_definition
    ):
        resharded = FleetSpec(
            adl_name=SPEC.adl_name,
            homes=SPEC.homes,
            seed=SPEC.seed,
            episodes_per_home=SPEC.episodes_per_home,
            training_episodes=SPEC.training_episodes,
            seed_classes=SPEC.seed_classes,
            shard_size=1,
        )
        assert resharded.expand(tea_fleet_definition) == SPEC.expand(
            tea_fleet_definition
        )

    def test_shards_flatten_back_to_expand(self, tea_fleet_definition):
        homes = SPEC.expand(tea_fleet_definition)
        shards = SPEC.shards(homes)
        assert [home for shard in shards for home in shard] == homes
        assert all(len(shard) <= SPEC.shard_size for shard in shards)

    def test_seed_classes_bound_training_seeds(self, tea_fleet_definition):
        homes = SPEC.expand(tea_fleet_definition)
        assert len({home.train_seed for home in homes}) <= SPEC.seed_classes

    def test_distinct_trainings_dedupe_and_preserve_order(
        self, tea_fleet_definition
    ):
        homes = SPEC.expand(tea_fleet_definition)
        representatives = distinct_trainings(homes)
        keys = [home.training_key for home in representatives]
        assert len(set(keys)) == len(keys)
        assert set(keys) == {home.training_key for home in homes}
        ids = [home.home_id for home in representatives]
        assert ids == sorted(ids)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"homes": 0},
            {"episodes_per_home": 0},
            {"training_episodes": -1},
            {"seed_classes": 0},
            {"shard_size": 0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FleetSpec(**kwargs)


class TestWelford:
    def test_matches_naive_aggregation(self):
        rng = seeded_generator(7)
        values = [float(v) for v in rng.normal(3.0, 2.0, size=200)]
        welford = Welford()
        for value in values:
            welford.add(value)
        assert welford.count == len(values)
        assert math.isclose(welford.mean, statistics.fmean(values))
        assert math.isclose(welford.sd, statistics.stdev(values))

    def test_sharded_merge_matches_single_stream(self):
        rng = seeded_generator(11)
        values = [float(v) for v in rng.uniform(0.0, 5.0, size=100)]
        single = Welford()
        for value in values:
            single.add(value)
        merged = Welford()
        for start in range(0, len(values), 7):
            shard = Welford()
            for value in values[start:start + 7]:
                shard.add(value)
            merged.merge(shard)
        assert merged.count == single.count
        assert math.isclose(merged.mean, single.mean)
        assert math.isclose(merged.sd, single.sd)

    def test_sd_needs_two_observations(self):
        welford = Welford()
        assert welford.sd is None
        welford.add(1.0)
        assert welford.sd is None
        welford.add(2.0)
        assert welford.sd is not None


def _report(home_id, reminders=2, episodes=1, seen=2, followed=1):
    return HomeReport(
        home_id=home_id,
        severity=0.4,
        episodes=episodes,
        completed=episodes,
        reminders=reminders,
        minimal_reminders=reminders,
        specific_reminders=0,
        praises=1,
        caregiver_alerts=0,
        errors=reminders,
        self_recoveries=0,
        reminders_seen=seen,
        reminders_followed=followed,
    )


class TestFleetMetrics:
    def test_counts_exact_vs_naive_per_home_aggregation(self):
        reports = [_report(i, reminders=i % 3, seen=i % 3, followed=i % 3)
                   for i in range(20)]
        streamed = FleetMetrics()
        for report in reports:
            streamed.add_home(report)
        assert streamed.homes == 20
        assert streamed.reminders == sum(r.reminders for r in reports)
        assert streamed.episodes == sum(r.episodes for r in reports)
        rates = [r.reminders / r.episodes for r in reports]
        assert math.isclose(
            streamed.reminders_per_episode.mean, statistics.fmean(rates)
        )
        assert math.isclose(
            streamed.reminders_per_episode.sd, statistics.stdev(rates)
        )

    def test_compliance_skips_homes_without_reminders(self):
        metrics = FleetMetrics()
        metrics.add_home(_report(0, reminders=0, seen=0, followed=0))
        metrics.add_home(_report(1, reminders=2, seen=2, followed=1))
        assert metrics.compliance.count == 1
        assert math.isclose(metrics.compliance.mean, 0.5)

    def test_merge_equals_single_accumulator(self):
        reports = [_report(i, reminders=1 + i % 2) for i in range(9)]
        single = FleetMetrics()
        for report in reports:
            single.add_home(report)
        left, right = FleetMetrics(), FleetMetrics()
        for report in reports[:4]:
            left.add_home(report)
        for report in reports[4:]:
            right.add_home(report)
        left.merge(right)
        assert left.to_dict() == single.to_dict()


class TestFleetDeterminism:
    def test_byte_identical_at_jobs_1_2_4(self, serial_result):
        serial = serial_result.to_json()
        assert run_fleet(SPEC, jobs=2).to_json() == serial
        assert run_fleet(SPEC, jobs=4).to_json() == serial

    def test_every_home_counted(self, serial_result):
        assert serial_result.metrics.homes == SPEC.homes
        assert serial_result.metrics.episodes == (
            SPEC.homes * SPEC.episodes_per_home
        )

    def test_policy_sharing_trains_only_distinct_routines(
        self, serial_result, tea_fleet_definition
    ):
        distinct = len(distinct_trainings(SPEC.expand(tea_fleet_definition)))
        assert serial_result.distinct_trainings == distinct
        assert distinct < SPEC.homes
        # Wave 1 misses once per distinct training; every home then
        # resolves its policy with a cache hit.
        assert serial_result.metrics.cache_misses == distinct
        assert serial_result.metrics.cache_hits == SPEC.homes

    def test_parallel_run_reports_worker_side_cache_stats(self):
        parallel = run_fleet(SPEC, jobs=2)
        assert parallel.metrics.cache_hits == SPEC.homes
        assert parallel.metrics.cache_misses == (
            parallel.distinct_trainings
        )

    def test_shared_cache_dir_warm_second_run(self, tmp_path, serial_result):
        cache = str(tmp_path / "fleet-cache")
        cold = run_fleet(SPEC, jobs=1, cache_dir=cache)
        warm = run_fleet(SPEC, jobs=1, cache_dir=cache)
        assert cold.metrics.to_dict()["severity"] == (
            warm.metrics.to_dict()["severity"]
        )
        assert warm.metrics.cache_misses == 0
        assert warm.metrics.cache_hits == (
            SPEC.homes + warm.distinct_trainings
        )
        # A private-cache run produces the same simulation metrics.
        cold_dict = cold.to_dict()
        serial_dict = serial_result.to_dict()
        cold_dict["metrics"].pop("cache")
        serial_dict["metrics"].pop("cache")
        assert cold_dict == serial_dict


class TestShardModes:
    """Batched shared-kernel shards vs the per-home reference path."""

    @staticmethod
    def _report_fields(report):
        return [
            (slot, getattr(report, slot)) for slot in HomeReport.__slots__
        ]

    def test_simulate_shard_matches_per_home_reports(
        self, tea_fleet_definition, tmp_path
    ):
        from repro.core.config import CoReDAConfig
        from repro.fleet import simulate_home, simulate_shard
        from repro.planning.store import PolicyCache

        homes = SPEC.expand(tea_fleet_definition)[:4]
        config = CoReDAConfig(seed=SPEC.seed)
        cache = PolicyCache(str(tmp_path / "cache"))
        batched = simulate_shard(
            tea_fleet_definition, homes, config,
            SPEC.episodes_per_home, SPEC.training_episodes, cache,
        )
        per_home = [
            simulate_home(
                tea_fleet_definition, home, config,
                SPEC.episodes_per_home, SPEC.training_episodes, cache,
            )
            for home in homes
        ]
        assert [self._report_fields(r) for r in batched] == [
            self._report_fields(r) for r in per_home
        ]

    def test_batched_fleet_matches_per_home_fleet(self, serial_result):
        per_home = run_fleet(SPEC, jobs=1, batch_homes=False)
        assert per_home.to_json() == serial_result.to_json()

    def test_batched_fleet_byte_identical_across_jobs(self, serial_result):
        assert run_fleet(SPEC, jobs=3, batch_homes=True).to_json() == (
            serial_result.to_json()
        )

    def test_infer_backends_identical_in_both_shard_modes(
        self, serial_result
    ):
        from repro.core.config import CoReDAConfig, PlanningConfig

        scalar_config = CoReDAConfig(
            seed=SPEC.seed,
            planning=PlanningConfig(infer_backend="scalar"),
        )
        scalar_batched = run_fleet(SPEC, jobs=1, config=scalar_config)
        assert scalar_batched.to_json() == serial_result.to_json()
        scalar_per_home = run_fleet(
            SPEC, jobs=2, config=scalar_config, batch_homes=False
        )
        assert scalar_per_home.to_json() == serial_result.to_json()

    def test_kernel_backends_identical_in_batched_mode(self, serial_result):
        from repro.core.config import CoReDAConfig, SimConfig

        heap = run_fleet(
            SPEC,
            jobs=1,
            config=CoReDAConfig(
                seed=SPEC.seed, sim=SimConfig(kernel_backend="heap")
            ),
        )
        assert heap.to_json() == serial_result.to_json()

    def test_cli_shard_mode_flag(self, capsys):
        argv = [
            "fleet", "--homes", "4", "--train-episodes", "40",
            "--seed-classes", "2", "--shard-size", "2", "--json",
        ]
        assert main(argv + ["--shard-mode", "per-home"]) == 0
        per_home = capsys.readouterr().out
        assert main(argv + ["--shard-mode", "batched"]) == 0
        batched = capsys.readouterr().out
        assert json.loads(batched) == json.loads(per_home)


class TestPolicyPlanes:
    """Zero-copy shared-memory arena vs the JSON reference path.

    The plane is a speed knob, not a semantics knob: both must
    produce the same bytes and the same cache accounting at any
    ``--jobs``, in both shard modes.  (``serial_result`` runs on the
    default plane, which is ``shm`` -- so every byte-identity test in
    this module already exercises the arena; these pin the reference
    path against it explicitly.)
    """

    def test_json_plane_byte_identical_serial(self, serial_result):
        json_plane = run_fleet(SPEC, jobs=1, policy_plane="json")
        assert json_plane.to_json() == serial_result.to_json()

    def test_json_plane_byte_identical_parallel_per_home(
        self, serial_result
    ):
        json_plane = run_fleet(
            SPEC, jobs=2, policy_plane="json", batch_homes=False
        )
        assert json_plane.to_json() == serial_result.to_json()

    def test_shm_plane_byte_identical_parallel(self, serial_result):
        shm_plane = run_fleet(SPEC, jobs=2, policy_plane="shm")
        assert shm_plane.to_json() == serial_result.to_json()

    def test_hit_accounting_is_plane_independent(self, serial_result):
        json_plane = run_fleet(SPEC, jobs=1, policy_plane="json")
        assert json_plane.metrics.cache_hits == (
            serial_result.metrics.cache_hits
        )
        assert json_plane.metrics.cache_misses == (
            serial_result.metrics.cache_misses
        )

    def test_no_shm_segments_left_behind(self):
        import glob

        run_fleet(SPEC, jobs=2, policy_plane="shm")
        assert glob.glob("/dev/shm/rpp*") == []

    def test_unknown_plane_rejected(self):
        from repro.core.errors import CoReDAError

        with pytest.raises(CoReDAError):
            run_fleet(SPEC, jobs=1, policy_plane="mmap")

    def test_cli_policy_plane_flag(self, capsys):
        argv = [
            "fleet", "--homes", "4", "--train-episodes", "40",
            "--seed-classes", "2", "--shard-size", "2", "--json",
        ]
        assert main(argv + ["--policy-plane", "shm"]) == 0
        shm_out = capsys.readouterr().out
        assert main(argv + ["--policy-plane", "json"]) == 0
        json_out = capsys.readouterr().out
        assert json.loads(shm_out) == json.loads(json_out)


class TestFleetCli:
    def test_text_output(self, capsys):
        code = main([
            "fleet", "--homes", "4", "--episodes", "1",
            "--train-episodes", "40", "--seed-classes", "2",
            "--shard-size", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "4 homes" in out
        assert "policy cache" in out

    def test_json_output_parses(self, capsys):
        code = main([
            "fleet", "--homes", "4", "--train-episodes", "40",
            "--seed-classes", "2", "--shard-size", "2", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["homes"] == 4
        assert payload["metrics"]["cache"]["trainings"] == (
            payload["distinct_trainings"]
        )

    def test_invalid_spec_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "--homes", "0"])
        assert excinfo.value.code == 2
        assert "homes must be positive" in capsys.readouterr().err

    def test_timing_goes_to_stderr_not_stdout(self, capsys):
        code = main([
            "fleet", "--homes", "2", "--train-episodes", "40",
            "--seed-classes", "1", "--shard-size", "2", "--timing",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "homes/sec" in captured.err
        assert "homes/sec" not in captured.out
