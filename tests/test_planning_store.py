"""Unit tests for policy persistence."""

import json

import numpy as np
import pytest

from repro.adls.tooth_brushing import make_tooth_brushing
from repro.core.errors import CoReDAError
from repro.planning.predictor import NextStepPredictor
from repro.planning.state import episode_states
from repro.planning.store import FORMAT_VERSION, load_predictor, save_predictor
from repro.planning.trainer import RoutineTrainer


@pytest.fixture
def predictor(tea_adl):
    trainer = RoutineTrainer(tea_adl, rng=np.random.default_rng(0))
    routine = tea_adl.canonical_routine()
    result = trainer.train([list(routine.step_ids)] * 120, routine=routine)
    return NextStepPredictor.from_training(result)


class TestRoundTrip:
    def test_predictions_survive_roundtrip(self, tmp_path, tea_adl, predictor):
        path = tmp_path / "policy.json"
        save_predictor(predictor, path, tea_adl.name)
        restored = load_predictor(path, tea_adl)
        states = episode_states(tea_adl.step_ids)
        for index in range(len(states) - 1):
            assert restored.predict(states[index]) == predictor.predict(
                states[index]
            )
        assert restored.converged == predictor.converged

    def test_q_values_preserved(self, tmp_path, tea_adl, predictor):
        path = tmp_path / "policy.json"
        save_predictor(predictor, path, tea_adl.name)
        restored = load_predictor(path, tea_adl)
        assert restored.q.max_abs_difference(predictor.q) == pytest.approx(0.0)

    def test_file_is_plain_json(self, tmp_path, tea_adl, predictor):
        path = tmp_path / "policy.json"
        save_predictor(predictor, path, tea_adl.name)
        document = json.loads(path.read_text())
        assert document["format"] == FORMAT_VERSION
        assert document["adl"] == "tea-making"
        assert document["entries"]


class TestValidation:
    def test_wrong_adl_rejected(self, tmp_path, tea_adl, predictor):
        path = tmp_path / "policy.json"
        save_predictor(predictor, path, tea_adl.name)
        with pytest.raises(CoReDAError):
            load_predictor(path, make_tooth_brushing())

    def test_wrong_format_rejected(self, tmp_path, tea_adl, predictor):
        path = tmp_path / "policy.json"
        save_predictor(predictor, path, tea_adl.name)
        document = json.loads(path.read_text())
        document["format"] = 999
        path.write_text(json.dumps(document))
        with pytest.raises(CoReDAError):
            load_predictor(path, tea_adl)

    def test_unknown_tool_rejected(self, tmp_path, tea_adl, predictor):
        path = tmp_path / "policy.json"
        save_predictor(predictor, path, tea_adl.name)
        document = json.loads(path.read_text())
        document["entries"][0]["tool_id"] = 999
        path.write_text(json.dumps(document))
        with pytest.raises(CoReDAError):
            load_predictor(path, tea_adl)
