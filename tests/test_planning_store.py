"""Unit tests for policy persistence."""

import json

import numpy as np
import pytest

from repro.adls.tooth_brushing import make_tooth_brushing
from repro.core.config import PlanningConfig
from repro.core.errors import CoReDAError
from repro.planning.predictor import NextStepPredictor
from repro.planning.state import episode_states
from repro.planning.store import (
    FORMAT_VERSION,
    PolicyCache,
    load_predictor,
    save_predictor,
    train_routine_cached,
    training_cache_key,
)
from repro.planning.trainer import RoutineTrainer


@pytest.fixture
def predictor(tea_adl):
    trainer = RoutineTrainer(tea_adl, rng=np.random.default_rng(0))
    routine = tea_adl.canonical_routine()
    result = trainer.train([list(routine.step_ids)] * 120, routine=routine)
    return NextStepPredictor.from_training(result)


class TestRoundTrip:
    def test_predictions_survive_roundtrip(self, tmp_path, tea_adl, predictor):
        path = tmp_path / "policy.json"
        save_predictor(predictor, path, tea_adl.name)
        restored = load_predictor(path, tea_adl)
        states = episode_states(tea_adl.step_ids)
        for index in range(len(states) - 1):
            assert restored.predict(states[index]) == predictor.predict(
                states[index]
            )
        assert restored.converged == predictor.converged

    def test_q_values_preserved(self, tmp_path, tea_adl, predictor):
        path = tmp_path / "policy.json"
        save_predictor(predictor, path, tea_adl.name)
        restored = load_predictor(path, tea_adl)
        assert restored.q.max_abs_difference(predictor.q) == pytest.approx(0.0)

    def test_file_is_plain_json(self, tmp_path, tea_adl, predictor):
        path = tmp_path / "policy.json"
        save_predictor(predictor, path, tea_adl.name)
        document = json.loads(path.read_text())
        assert document["format"] == FORMAT_VERSION
        assert document["adl"] == "tea-making"
        assert document["entries"]


class TestValidation:
    def test_wrong_adl_rejected(self, tmp_path, tea_adl, predictor):
        path = tmp_path / "policy.json"
        save_predictor(predictor, path, tea_adl.name)
        with pytest.raises(CoReDAError):
            load_predictor(path, make_tooth_brushing())

    def test_wrong_format_rejected(self, tmp_path, tea_adl, predictor):
        path = tmp_path / "policy.json"
        save_predictor(predictor, path, tea_adl.name)
        document = json.loads(path.read_text())
        document["format"] = 999
        path.write_text(json.dumps(document))
        with pytest.raises(CoReDAError):
            load_predictor(path, tea_adl)

    def test_unknown_tool_rejected(self, tmp_path, tea_adl, predictor):
        path = tmp_path / "policy.json"
        save_predictor(predictor, path, tea_adl.name)
        document = json.loads(path.read_text())
        document["entries"][0]["tool_id"] = 999
        path.write_text(json.dumps(document))
        with pytest.raises(CoReDAError):
            load_predictor(path, tea_adl)


class TestTrainingCacheKey:
    def test_stable_across_calls(self, tea_adl):
        config = PlanningConfig()
        first = training_cache_key(tea_adl.name, (1, 2, 3, 4), config, 0, 120)
        second = training_cache_key(tea_adl.name, [1, 2, 3, 4], config, 0, 120)
        assert first == second

    def test_every_component_matters(self, tea_adl):
        config = PlanningConfig()
        base = training_cache_key(tea_adl.name, (1, 2, 3, 4), config, 0, 120)
        assert base != training_cache_key("other", (1, 2, 3, 4), config, 0, 120)
        assert base != training_cache_key(
            tea_adl.name, (1, 3, 2, 4), config, 0, 120
        )
        assert base != training_cache_key(
            tea_adl.name, (1, 2, 3, 4), PlanningConfig(learning_rate=0.3),
            0, 120,
        )
        assert base != training_cache_key(
            tea_adl.name, (1, 2, 3, 4), config, 1, 120
        )
        assert base != training_cache_key(
            tea_adl.name, (1, 2, 3, 4), config, 0, 121
        )
        assert base != training_cache_key(
            tea_adl.name, (1, 2, 3, 4), config, 0, 120,
            learner=("dyna-q", 5),
        )


class TestPolicyCache:
    def test_miss_then_hit(self, tmp_path, tea_adl):
        cache = PolicyCache(tmp_path / "cache")
        config = PlanningConfig()
        ids = list(tea_adl.canonical_routine().step_ids)
        cold = train_routine_cached(tea_adl, ids, config, 0, 60, cache=cache)
        warm = train_routine_cached(tea_adl, ids, config, 0, 60, cache=cache)
        assert not cold.cache_hit
        assert warm.cache_hit
        assert cache.misses == 1
        assert cache.hits == 1
        assert len(cache) == 1

    def test_hit_reproduces_miss_exactly(self, tmp_path, tea_adl):
        cache = PolicyCache(tmp_path / "cache")
        config = PlanningConfig()
        ids = list(tea_adl.canonical_routine().step_ids)
        cold = train_routine_cached(tea_adl, ids, config, 3, 60, cache=cache)
        warm = train_routine_cached(tea_adl, ids, config, 3, 60, cache=cache)
        assert warm.curve.behaviour_accuracy == cold.curve.behaviour_accuracy
        assert warm.curve.greedy_accuracy == cold.curve.greedy_accuracy
        assert warm.convergence == cold.convergence
        states = episode_states(ids)
        cold_predictor = cold.predictor(tea_adl)
        warm_predictor = warm.predictor(tea_adl)
        for index in range(len(states) - 1):
            assert warm_predictor.predict(states[index]) == cold_predictor.predict(
                states[index]
            )

    def test_different_seeds_are_different_entries(self, tmp_path, tea_adl):
        cache = PolicyCache(tmp_path / "cache")
        config = PlanningConfig()
        ids = list(tea_adl.canonical_routine().step_ids)
        train_routine_cached(tea_adl, ids, config, 0, 60, cache=cache)
        train_routine_cached(tea_adl, ids, config, 1, 60, cache=cache)
        assert len(cache) == 2
        assert cache.hits == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path, tea_adl):
        cache = PolicyCache(tmp_path / "cache")
        config = PlanningConfig()
        ids = list(tea_adl.canonical_routine().step_ids)
        train_routine_cached(tea_adl, ids, config, 0, 60, cache=cache)
        key = training_cache_key(tea_adl.name, ids, config, 0, 60)
        cache.path_for(key).write_text("not json")
        again = train_routine_cached(tea_adl, ids, config, 0, 60, cache=cache)
        assert not again.cache_hit

    def test_len_ignores_crashed_writer_temp_files(self, tmp_path):
        """Regression: ``*.json`` globs match dotted temp leftovers.

        ``pathlib`` globbing matches a leading dot, so a crashed
        writer's ``.tmp-x.json`` used to inflate ``len(cache)``
        forever.
        """
        cache = PolicyCache(tmp_path / "cache")
        cache.put("real", {"format": 1})
        (cache.root / ".tmp-x.json").write_text("{}", encoding="utf-8")
        assert len(cache) == 1

    def test_init_sweeps_stale_temp_files(self, tmp_path):
        root = tmp_path / "cache"
        root.mkdir()
        (root / ".tmp-old.part").write_text("{}", encoding="utf-8")
        (root / ".tmp-old.json").write_text("{}", encoding="utf-8")
        (root / "keep.json").write_text('{"format": 1}', encoding="utf-8")
        cache = PolicyCache(root)
        assert sorted(p.name for p in root.iterdir()) == ["keep.json"]
        assert len(cache) == 1

    def test_put_leaves_no_temp_files(self, tmp_path):
        cache = PolicyCache(tmp_path / "cache")
        for index in range(3):
            cache.put(f"key{index}", {"format": 1, "index": index})
        leftovers = [p.name for p in cache.root.iterdir()
                     if p.name.startswith(".")]
        assert leftovers == []
        assert len(cache) == 3

    def test_stats_tracks_hits_and_misses(self, tmp_path):
        cache = PolicyCache(tmp_path / "cache")
        assert cache.stats() == (0, 0)
        assert cache.get("absent") is None
        cache.put("present", {"format": 1})
        assert cache.get("present") == {"format": 1}
        assert cache.stats() == (1, 1)
