"""Unit tests for synthetic sensor waveforms."""

import numpy as np
import pytest

from repro.sensors.signals import SignalProfile, SignalSource


def source(profile=None, seed=0):
    return SignalSource(
        profile if profile is not None else SignalProfile(),
        np.random.default_rng(seed),
    )


class TestProfileValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"burst_probability": 0.0},
            {"burst_probability": 1.5},
            {"burst_mean": 0.0},
            {"noise_sd": -0.1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SignalProfile(**kwargs)


class TestRegimes:
    def test_idle_stays_below_threshold(self):
        src = source()
        samples = [src.read(t * 0.1) for t in range(2000)]
        assert max(samples) < 1.0  # noise_sd=0.18 => ~5.5 sigma

    def test_active_produces_bursts(self):
        src = source(SignalProfile(burst_probability=0.9))
        src.begin_use(0.0)
        samples = [src.read(t * 0.1) for t in range(100)]
        assert sum(1 for s in samples if s > 1.0) > 50

    def test_samples_non_negative(self):
        src = source()
        src.begin_use(0.0)
        assert all(src.read(t * 0.1) >= 0.0 for t in range(200))

    def test_end_use_returns_to_baseline(self):
        src = source(SignalProfile(burst_probability=0.9))
        src.begin_use(0.0)
        src.end_use()
        samples = [src.read(t * 0.1) for t in range(500)]
        assert max(samples) < 1.0

    def test_duration_auto_expires(self):
        src = source(SignalProfile(burst_probability=0.9))
        src.begin_use(0.0, duration=5.0)
        assert src.active
        src.read(6.0)
        assert not src.active

    def test_active_until_boundary_is_exclusive(self):
        src = source(SignalProfile(burst_probability=0.9))
        src.begin_use(0.0, duration=5.0)
        src.read(4.9)
        assert src.active
        src.read(5.0)
        assert not src.active


class TestReadTrace:
    def test_trace_length_and_values(self):
        src = source(SignalProfile(burst_probability=0.9))
        src.begin_use(0.0, duration=100.0)
        trace = src.read_trace(0.0, 50, 10.0)
        assert trace.shape == (50,)
        assert (trace >= 0).all()

    def test_trace_respects_expiry(self):
        src = source(SignalProfile(burst_probability=0.99, burst_mean=3.0))
        src.begin_use(0.0, duration=1.0)
        trace = src.read_trace(0.0, 100, 10.0)
        # After the first second (10 samples) the source is idle.
        assert max(trace[12:]) < 1.0

    def test_reproducible_given_seed(self):
        a = source(seed=5).read_trace(0.0, 20, 10.0)
        b = source(seed=5).read_trace(0.0, 20, 10.0)
        assert np.allclose(a, b)


def twin_sources(profile=None, seed=0):
    """Two sources with identical profile and RNG state."""
    return source(profile, seed), source(profile, seed)


class TestReadBlockEquivalence:
    """read_block / read_block_at must match scalar read draw-for-draw."""

    def rng_state(self, src):
        return src._rng.bit_generator.state

    def assert_equivalent(self, fast, ref, times):
        expected = [ref.read(t) for t in times]
        got = fast.read_block_at(times)
        assert got.tolist() == expected  # exact, not allclose
        assert self.rng_state(fast) == self.rng_state(ref)
        assert fast.active == ref.active
        assert fast.active_until == ref.active_until

    def test_idle_block(self):
        fast, ref = twin_sources()
        self.assert_equivalent(fast, ref, [i * 0.1 for i in range(37)])

    def test_active_infinite_block(self):
        fast, ref = twin_sources(SignalProfile(burst_probability=0.6))
        fast.begin_use(0.0)
        ref.begin_use(0.0)
        self.assert_equivalent(fast, ref, [i * 0.1 for i in range(50)])

    def test_expiry_mid_block(self):
        fast, ref = twin_sources(SignalProfile(burst_probability=0.6))
        fast.begin_use(0.0, duration=1.25)
        ref.begin_use(0.0, duration=1.25)
        self.assert_equivalent(fast, ref, [i * 0.1 for i in range(40)])

    def test_expiry_exactly_on_sample(self):
        # active_until lands exactly on a sample time: that sample
        # must already be idle (the boundary is exclusive).
        fast, ref = twin_sources(SignalProfile(burst_probability=0.9))
        fast.begin_use(0.0, duration=1.0)
        ref.begin_use(0.0, duration=1.0)
        self.assert_equivalent(fast, ref, [i * 0.25 for i in range(12)])

    def test_block_already_past_expiry(self):
        fast, ref = twin_sources(SignalProfile(burst_probability=0.9))
        fast.begin_use(0.0, duration=0.5)
        ref.begin_use(0.0, duration=0.5)
        self.assert_equivalent(fast, ref, [2.0 + i * 0.1 for i in range(10)])

    def test_accumulated_float_times(self):
        # read_block builds times by repeated addition, like a
        # firmware loop sleeping one period per sample; 0.1 * 3
        # accumulated differs from 3/10 in the last bit, and the
        # expiry comparison must see the accumulated value.
        fast, ref = twin_sources(SignalProfile(burst_probability=0.9))
        fast.begin_use(0.0, duration=0.30000000000000004)
        ref.begin_use(0.0, duration=0.30000000000000004)
        expected = []
        t = 0.0
        for _ in range(10):
            expected.append(ref.read(t))
            t += 0.1
        got = fast.read_block(0.0, 10, 10.0)
        assert got.tolist() == expected
        assert self.rng_state(fast) == self.rng_state(ref)

    def test_read_trace_matches_scalar_grid(self):
        # read_trace keeps its historical start + k/hz grid times.
        fast, ref = twin_sources(SignalProfile(burst_probability=0.5))
        fast.begin_use(0.0, duration=2.0)
        ref.begin_use(0.0, duration=2.0)
        times = 0.0 + np.arange(60) / 10.0
        expected = [ref.read(t) for t in times]
        got = fast.read_trace(0.0, 60, 10.0)
        assert got.tolist() == expected
        assert self.rng_state(fast) == self.rng_state(ref)

    def test_multiple_blocks_chain(self):
        fast, ref = twin_sources(SignalProfile(burst_probability=0.6))
        fast.begin_use(0.3, duration=1.5)
        ref.begin_use(0.3, duration=1.5)
        scalar = [ref.read(i * 0.1) for i in range(40)]
        chained = []
        for block in range(4):
            ts = [(block * 10 + i) * 0.1 for i in range(10)]
            chained.extend(fast.read_block_at(ts).tolist())
        assert chained == scalar
        assert self.rng_state(fast) == self.rng_state(ref)


class TestRegimeEpoch:
    def test_begin_and_end_bump_epoch(self):
        src = source()
        start = src.epoch
        src.begin_use(0.0)
        assert src.epoch == start + 1
        src.end_use()
        assert src.epoch == start + 2

    def test_auto_expiry_bumps_epoch_without_notify(self):
        src = source(SignalProfile(burst_probability=0.9))
        calls = []
        src.subscribe_regime(lambda: calls.append(src.epoch))
        src.begin_use(0.0, duration=1.0)
        assert len(calls) == 1
        before = src.epoch
        src.read(2.0)  # auto-expires inside the read
        assert src.epoch == before + 1
        assert len(calls) == 1  # no notification for self-observed expiry

    def test_unsubscribe(self):
        src = source()
        calls = []
        unsubscribe = src.subscribe_regime(lambda: calls.append(1))
        src.begin_use(0.0)
        unsubscribe()
        src.end_use()
        assert calls == [1]


class TestCaptureRestore:
    def test_restore_replays_identical_draws(self):
        src = source(SignalProfile(burst_probability=0.6))
        src.begin_use(0.0, duration=3.0)
        state = src.capture()
        first = src.read_block_at([i * 0.1 for i in range(40)])
        src.restore(state)
        second = src.read_block_at([i * 0.1 for i in range(40)])
        assert first.tolist() == second.tolist()

    def test_restore_recovers_regime(self):
        src = source(SignalProfile(burst_probability=0.9))
        src.begin_use(0.0, duration=1.0)
        state = src.capture()
        src.read(5.0)  # expires
        assert not src.active
        src.restore(state)
        assert src.active
        assert src.active_until == 1.0

    def test_set_regime_does_not_notify(self):
        src = source()
        calls = []
        src.subscribe_regime(lambda: calls.append(1))
        src.set_regime(True, 7.0)
        assert src.active
        assert src.active_until == 7.0
        assert calls == []
