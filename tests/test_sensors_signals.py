"""Unit tests for synthetic sensor waveforms."""

import numpy as np
import pytest

from repro.sensors.signals import SignalProfile, SignalSource


def source(profile=None, seed=0):
    return SignalSource(
        profile if profile is not None else SignalProfile(),
        np.random.default_rng(seed),
    )


class TestProfileValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"burst_probability": 0.0},
            {"burst_probability": 1.5},
            {"burst_mean": 0.0},
            {"noise_sd": -0.1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SignalProfile(**kwargs)


class TestRegimes:
    def test_idle_stays_below_threshold(self):
        src = source()
        samples = [src.read(t * 0.1) for t in range(2000)]
        assert max(samples) < 1.0  # noise_sd=0.18 => ~5.5 sigma

    def test_active_produces_bursts(self):
        src = source(SignalProfile(burst_probability=0.9))
        src.begin_use(0.0)
        samples = [src.read(t * 0.1) for t in range(100)]
        assert sum(1 for s in samples if s > 1.0) > 50

    def test_samples_non_negative(self):
        src = source()
        src.begin_use(0.0)
        assert all(src.read(t * 0.1) >= 0.0 for t in range(200))

    def test_end_use_returns_to_baseline(self):
        src = source(SignalProfile(burst_probability=0.9))
        src.begin_use(0.0)
        src.end_use()
        samples = [src.read(t * 0.1) for t in range(500)]
        assert max(samples) < 1.0

    def test_duration_auto_expires(self):
        src = source(SignalProfile(burst_probability=0.9))
        src.begin_use(0.0, duration=5.0)
        assert src.active
        src.read(6.0)
        assert not src.active

    def test_active_until_boundary_is_exclusive(self):
        src = source(SignalProfile(burst_probability=0.9))
        src.begin_use(0.0, duration=5.0)
        src.read(4.9)
        assert src.active
        src.read(5.0)
        assert not src.active


class TestReadTrace:
    def test_trace_length_and_values(self):
        src = source(SignalProfile(burst_probability=0.9))
        src.begin_use(0.0, duration=100.0)
        trace = src.read_trace(0.0, 50, 10.0)
        assert trace.shape == (50,)
        assert (trace >= 0).all()

    def test_trace_respects_expiry(self):
        src = source(SignalProfile(burst_probability=0.99, burst_mean=3.0))
        src.begin_use(0.0, duration=1.0)
        trace = src.read_trace(0.0, 100, 10.0)
        # After the first second (10 samples) the source is idle.
        assert max(trace[12:]) < 1.0

    def test_reproducible_given_seed(self):
        a = source(seed=5).read_trace(0.0, 20, 10.0)
        b = source(seed=5).read_trace(0.0, 20, 10.0)
        assert np.allclose(a, b)
