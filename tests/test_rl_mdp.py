"""Unit tests for the explicit tabular MDP."""

import pytest

from repro.rl.mdp import TabularMDP


def two_state_mdp():
    mdp = TabularMDP()
    mdp.add_transition("s1", "go", "s2", probability=1.0, reward=1.0)
    mdp.add_transition("s2", "go", "goal", probability=1.0, reward=10.0)
    mdp.mark_terminal("goal")
    return mdp


class TestConstruction:
    def test_states_include_successors(self):
        mdp = two_state_mdp()
        assert set(mdp.states()) == {"s1", "s2", "goal"}

    def test_actions_listed_once(self):
        mdp = TabularMDP()
        mdp.add_transition("s", "a", "t", probability=0.5, reward=0.0)
        mdp.add_transition("s", "a", "u", probability=0.5, reward=1.0)
        assert mdp.actions("s") == ["a"]

    def test_terminal_has_no_actions(self):
        mdp = two_state_mdp()
        assert mdp.actions("goal") == []
        assert mdp.is_terminal("goal")

    def test_outcomes(self):
        mdp = two_state_mdp()
        outcomes = mdp.outcomes("s1", "go")
        assert len(outcomes) == 1
        assert outcomes[0].next_state == "s2"
        assert outcomes[0].reward == 1.0

    def test_unknown_transition_raises(self):
        with pytest.raises(KeyError):
            two_state_mdp().outcomes("s1", "missing")

    def test_probability_bounds(self):
        mdp = TabularMDP()
        with pytest.raises(ValueError):
            mdp.add_transition("s", "a", "t", probability=0.0)
        with pytest.raises(ValueError):
            mdp.add_transition("s", "a", "t", probability=1.5)


class TestValidate:
    def test_valid_distribution_passes(self):
        mdp = TabularMDP()
        mdp.add_transition("s", "a", "t", probability=0.4)
        mdp.add_transition("s", "a", "u", probability=0.6)
        mdp.validate()

    def test_invalid_distribution_fails(self):
        mdp = TabularMDP()
        mdp.add_transition("s", "a", "t", probability=0.4)
        with pytest.raises(ValueError):
            mdp.validate()

    def test_states_deterministic_order(self):
        mdp = two_state_mdp()
        assert mdp.states() == sorted(mdp.states(), key=repr)
