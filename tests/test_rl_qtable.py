"""Unit tests for the tabular Q function."""

import pytest

from repro.rl.qtable import QTable


class TestValues:
    def test_default_initial_value(self):
        q = QTable(initial_value=5.0)
        assert q.value("s", "a") == 5.0

    def test_set_and_get(self):
        q = QTable()
        q.set("s", "a", 3.5)
        assert q.value("s", "a") == 3.5

    def test_add_accumulates_from_initial(self):
        q = QTable(initial_value=10.0)
        q.add("s", "a", 2.0)
        q.add("s", "a", 3.0)
        assert q.value("s", "a") == 15.0

    def test_len_counts_written_pairs(self):
        q = QTable()
        q.set("s", "a", 1.0)
        q.set("s", "b", 1.0)
        q.set("s", "a", 2.0)
        assert len(q) == 2


class TestArgmax:
    def test_best_action(self):
        q = QTable()
        q.set("s", "a", 1.0)
        q.set("s", "b", 3.0)
        assert q.best_action("s", ["a", "b"]) == "b"

    def test_tie_break_by_repr_is_deterministic(self):
        q = QTable()
        assert q.best_action("s", ["zeta", "alpha", "mid"]) == "alpha"

    def test_empty_actions_raises(self):
        with pytest.raises(ValueError):
            QTable().best_action("s", [])
        with pytest.raises(ValueError):
            QTable().max_value("s", [])

    def test_max_value(self):
        q = QTable()
        q.set("s", "a", -1.0)
        q.set("s", "b", 2.0)
        assert q.max_value("s", ["a", "b"]) == 2.0

    def test_greedy_policy_over_states(self):
        q = QTable()
        q.set("s1", "a", 1.0)
        q.set("s2", "b", 1.0)
        policy = q.greedy_policy({"s1": ["a", "b"], "s2": ["a", "b"]})
        assert policy == {"s1": "a", "s2": "b"}


class TestCopyDiff:
    def test_copy_is_independent(self):
        q = QTable()
        q.set("s", "a", 1.0)
        clone = q.copy()
        clone.set("s", "a", 9.0)
        assert q.value("s", "a") == 1.0

    def test_max_abs_difference(self):
        a = QTable()
        b = QTable()
        a.set("s", "x", 1.0)
        b.set("s", "x", 4.0)
        b.set("t", "y", 0.5)
        assert a.max_abs_difference(b) == 3.0

    def test_difference_of_empty_tables_is_zero(self):
        assert QTable().max_abs_difference(QTable()) == 0.0

    def test_known_pairs(self):
        q = QTable()
        q.set("s", "a", 1.0)
        assert q.known_pairs() == [("s", "a")]
