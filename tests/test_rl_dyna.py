"""Unit tests for Dyna-Q."""

import numpy as np
import pytest

from repro.rl.dyna import DynaQLearner
from repro.rl.policies import EpsilonGreedyPolicy

ACTIONS = ["left", "right"]


class TestModel:
    def test_model_records_transitions(self, rng):
        learner = DynaQLearner(planning_steps=0)
        learner.observe("s", "right", 1.0, "t", ACTIONS, done=True, rng=rng)
        assert learner.model_size == 1

    def test_model_keeps_latest_outcome(self, rng):
        learner = DynaQLearner(planning_steps=0)
        learner.observe("s", "right", 1.0, "t1", ACTIONS, done=False, rng=rng)
        learner.observe("s", "right", 2.0, "t2", ACTIONS, done=False, rng=rng)
        assert learner.model_size == 1

    def test_planning_updates_counted(self, rng):
        learner = DynaQLearner(planning_steps=7)
        learner.observe("s", "right", 1.0, "t", ACTIONS, done=True, rng=rng)
        assert learner.planning_updates == 7

    def test_no_planning_without_rng(self):
        learner = DynaQLearner(planning_steps=7)
        learner.observe("s", "right", 1.0, "t", ACTIONS, done=True)
        assert learner.planning_updates == 0


class TestLearning:
    def test_planning_accelerates_value_propagation(self, rng):
        # One pass over a 3-step chain: with planning the early states
        # already see the terminal reward; without they do not.
        def run(planning_steps, seed):
            rng = np.random.default_rng(seed)
            learner = DynaQLearner(
                learning_rate=0.5, discount=0.9, planning_steps=planning_steps
            )
            chain = [("s1", "s2", 0.0, False), ("s2", "s3", 0.0, False),
                     ("s3", "t", 10.0, True)]
            for _ in range(3):  # a few passes
                for state, next_state, reward, done in chain:
                    learner.observe(
                        state, "right", reward, next_state, ACTIONS, done, rng=rng
                    )
            return learner.q.value("s1", "right")

        assert run(30, seed=0) > run(0, seed=0)

    def test_learns_optimal_policy(self, rng):
        learner = DynaQLearner(
            learning_rate=0.3,
            discount=0.9,
            planning_steps=10,
            policy=EpsilonGreedyPolicy(0.3),
        )
        for _ in range(150):
            learner.begin_episode()
            state = "s1"
            for _ in range(20):
                action, _ = learner.select_action(state, ACTIONS, rng)
                if action == "right":
                    next_state = "s2" if state == "s1" else "goal"
                    done = next_state == "goal"
                    reward = 10.0 if done else 0.0
                else:
                    next_state, done, reward = state, False, 0.0
                learner.observe(
                    state, action, reward, next_state, ACTIONS, done, rng=rng
                )
                if done:
                    break
                state = next_state
        assert learner.greedy_action("s1", ACTIONS) == "right"
        assert learner.greedy_action("s2", ACTIONS) == "right"


class TestValidation:
    def test_negative_planning_steps(self):
        with pytest.raises(ValueError):
            DynaQLearner(planning_steps=-1)

    def test_discount_bounds(self):
        with pytest.raises(ValueError):
            DynaQLearner(discount=1.0)
