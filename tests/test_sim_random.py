"""Unit tests for named random streams."""

from repro.sim.random import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "radio") == derive_seed(42, "radio")

    def test_name_separates(self):
        assert derive_seed(42, "radio") != derive_seed(42, "signal")

    def test_master_seed_separates(self):
        assert derive_seed(1, "radio") != derive_seed(2, "radio")

    def test_fits_in_63_bits(self):
        for name in ("a", "b", "radio.1", "x" * 100):
            assert 0 <= derive_seed(123, name) < 2**63


class TestRandomStreams:
    def test_same_name_same_generator_object(self):
        streams = RandomStreams(0)
        assert streams.get("a") is streams.get("a")

    def test_different_names_independent_draws(self):
        streams = RandomStreams(0)
        a = streams.get("a").random(5)
        b = streams.get("b").random(5)
        assert list(a) != list(b)

    def test_reproducible_across_instances(self):
        first = RandomStreams(7).get("x").random(5)
        second = RandomStreams(7).get("x").random(5)
        assert list(first) == list(second)

    def test_adding_stream_does_not_perturb_existing(self):
        solo = RandomStreams(7)
        value_solo = solo.get("a").random()

        pair = RandomStreams(7)
        pair.get("b").random()  # interleave another stream
        value_pair = pair.get("a").random()
        assert value_solo == value_pair

    def test_fork_is_deterministic_and_distinct(self):
        streams = RandomStreams(7)
        fork_a = streams.fork("child")
        fork_b = RandomStreams(7).fork("child")
        assert fork_a.master_seed == fork_b.master_seed
        assert fork_a.master_seed != streams.master_seed

    def test_spawned_counts_streams(self):
        streams = RandomStreams(0)
        streams.get("a")
        streams.get("b")
        streams.get("a")
        assert streams.spawned() == 2
