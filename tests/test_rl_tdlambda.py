"""Unit tests for Watkins TD(λ) Q-learning."""

import numpy as np
import pytest

from repro.rl.policies import EpsilonGreedyPolicy, GreedyPolicy
from repro.rl.tdlambda import TDLambdaQLearner

ACTIONS = ["left", "right"]


class TestSingleUpdates:
    def test_terminal_update_moves_toward_reward(self):
        learner = TDLambdaQLearner(learning_rate=0.5, discount=0.9)
        delta = learner.observe("s", "right", 10.0, "t", ACTIONS, done=True)
        assert delta == 10.0
        assert learner.q.value("s", "right") == 5.0

    def test_bootstrap_uses_max_next(self):
        learner = TDLambdaQLearner(learning_rate=1.0, discount=0.5, trace_decay=0.0)
        learner.q.set("s2", "left", 4.0)
        learner.q.set("s2", "right", 8.0)
        learner.observe("s1", "left", 1.0, "s2", ACTIONS, done=False)
        assert learner.q.value("s1", "left") == pytest.approx(1.0 + 0.5 * 8.0)

    def test_exploratory_updates_only_own_pair(self):
        learner = TDLambdaQLearner(learning_rate=0.5, discount=0.9, trace_decay=0.9)
        # Build an active trace on (s1, right).
        learner.observe("s1", "right", 0.0, "s2", ACTIONS, done=False)
        before = learner.q.value("s1", "right")
        # Exploratory step elsewhere with a large negative-delta
        # reward must not touch (s1, right).
        learner.observe(
            "s2", "left", -100.0, "s3", ACTIONS, done=False, exploratory=True
        )
        assert learner.q.value("s1", "right") == before
        assert learner.q.value("s2", "left") < 0

    def test_exploratory_resets_traces(self):
        learner = TDLambdaQLearner()
        learner.observe("s1", "right", 0.0, "s2", ACTIONS, done=False)
        learner.observe("s2", "left", 0.0, "s3", ACTIONS, done=False,
                        exploratory=True)
        assert len(learner.traces) == 0

    def test_greedy_chain_propagates_via_traces(self):
        learner = TDLambdaQLearner(learning_rate=0.5, discount=0.99,
                                   trace_decay=1.0)
        learner.begin_episode()
        learner.observe("s1", "right", 0.0, "s2", ACTIONS, done=False)
        learner.observe("s2", "right", 10.0, "t", ACTIONS, done=True)
        # The terminal delta reaches s1 through its eligibility trace.
        assert learner.q.value("s1", "right") > 0.0

    def test_terminal_resets_traces(self):
        learner = TDLambdaQLearner()
        learner.observe("s", "right", 1.0, "t", ACTIONS, done=True)
        assert len(learner.traces) == 0

    def test_update_counter(self):
        learner = TDLambdaQLearner()
        learner.observe("s", "right", 1.0, "t", ACTIONS, done=True)
        assert learner.updates == 1


class TestEpisodes:
    def test_begin_episode_clears_traces_and_counts(self):
        learner = TDLambdaQLearner()
        learner.observe("s", "right", 0.0, "s2", ACTIONS, done=False)
        learner.begin_episode()
        assert len(learner.traces) == 0
        assert learner.episodes == 1


class TestPolicyIntegration:
    def test_select_action_uses_policy(self, rng):
        learner = TDLambdaQLearner(policy=GreedyPolicy())
        learner.q.set("s", "right", 1.0)
        action, exploratory = learner.select_action("s", ACTIONS, rng)
        assert action == "right" and not exploratory

    def test_greedy_action(self):
        learner = TDLambdaQLearner()
        learner.q.set("s", "left", 2.0)
        assert learner.greedy_action("s", ACTIONS) == "left"


class TestConvergence:
    def test_learns_two_state_chain_optimal_policy(self, rng):
        # s1 --right--> s2 --right--> goal(+10); "left" loops with 0.
        learner = TDLambdaQLearner(
            learning_rate=0.3,
            discount=0.9,
            trace_decay=0.5,
            policy=EpsilonGreedyPolicy(0.3),
        )
        for _ in range(300):
            learner.begin_episode()
            state = "s1"
            for _ in range(20):
                action, exploratory = learner.select_action(state, ACTIONS, rng)
                if action == "right":
                    next_state = "s2" if state == "s1" else "goal"
                    done = next_state == "goal"
                    reward = 10.0 if done else 0.0
                else:
                    next_state, done, reward = state, False, 0.0
                learner.observe(
                    state, action, reward, next_state, ACTIONS, done, exploratory
                )
                if done:
                    break
                state = next_state
        assert learner.greedy_action("s1", ACTIONS) == "right"
        assert learner.greedy_action("s2", ACTIONS) == "right"
        assert learner.q.value("s2", "right") == pytest.approx(10.0, rel=0.1)


class TestValidation:
    def test_discount_bounds(self):
        with pytest.raises(ValueError):
            TDLambdaQLearner(discount=1.0)

    def test_trace_decay_bounds(self):
        with pytest.raises(ValueError):
            TDLambdaQLearner(trace_decay=1.5)
