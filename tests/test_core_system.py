"""Integration tests for the CoReDA orchestrator."""

import pytest

from repro.core.config import CoReDAConfig, RemindingConfig
from repro.core.errors import CoReDAError, NotConvergedError
from repro.core.system import CoReDA


class TestLifecycle:
    def test_training_attaches_subsystems(self, tea_definition):
        system = CoReDA.build(tea_definition, CoReDAConfig(seed=0))
        assert system.planning is None
        result = system.train_offline(episodes=120)
        assert result.convergence[0.95] is not None
        assert system.planning is not None
        assert system.reminding is not None
        assert system.predictor is not None

    def test_live_episode_requires_training(self, tea_definition):
        system = CoReDA.build(tea_definition, CoReDAConfig(seed=0))
        resident = system.create_resident()
        with pytest.raises(CoReDAError):
            system.run_episode(resident)

    def test_insufficient_training_raises(self, tea_definition):
        system = CoReDA.build(tea_definition, CoReDAConfig(seed=0))
        with pytest.raises(NotConvergedError):
            system.train_offline(episodes=3)

    def test_unconverged_allowed_when_not_required(self, tea_definition):
        system = CoReDA.build(tea_definition, CoReDAConfig(seed=0))
        system.train_offline(episodes=3, require_converged=False)
        assert system.planning is not None

    def test_train_from_episode_log(self, tea_definition):
        system = CoReDA.build(tea_definition, CoReDAConfig(seed=0))
        log = [[1, 3, 2, 4]] * 120
        result = system.train_offline(episode_log=log)
        assert list(result.routine.step_ids) == [1, 3, 2, 4]

    def test_start_idempotent(self, tea_definition):
        system = CoReDA.build(tea_definition, CoReDAConfig(seed=0))
        system.start()
        system.start()
        assert all(node.running for node in system.network.nodes.values())


class TestStallTimeouts:
    def test_fixed_timeout_when_statistics_disabled(self, tea_definition):
        from dataclasses import replace

        config = replace(
            CoReDAConfig(),
            reminding=RemindingConfig(statistical_timeout=False, stall_timeout=42.0),
        )
        system = CoReDA.build(tea_definition, config)
        assert system.stall_timeout_for(1) == 42.0

    def test_definition_fallback_when_no_history(self, tea_definition):
        system = CoReDA.build(tea_definition, CoReDAConfig())
        step = tea_definition.adl.step(1)
        expected = step.typical_duration + 3.0 * step.duration_sd
        assert system.stall_timeout_for(1) == pytest.approx(expected)

    def test_measured_statistics_preferred(self, tea_definition):
        system = CoReDA.build(tea_definition, CoReDAConfig())
        # Record five dwell samples of ~20 s for tool 1.
        t = 0.0
        for _ in range(5):
            system.sensing.history.append(t, 1)
            t += 20.0
            system.sensing.history.append(t, 2)
            t += 1.0
        timeout = system.stall_timeout_for(1)
        assert timeout == pytest.approx(20.0, abs=2.0)

    def test_minimum_floor(self, tea_definition):
        system = CoReDA.build(tea_definition, CoReDAConfig())
        # Steps with tiny nominal durations still get >= 5 s.
        assert system.stall_timeout_for(2) >= 5.0


class TestSessionLog:
    def test_session_aggregates_episode(self, tea_definition):
        from repro.adls.tea_making import POT, TEACUP

        system = CoReDA.build(tea_definition, CoReDAConfig(seed=1))
        system.train_offline(episodes=120)
        resident = system.create_resident(
            handling_overrides={POT.tool_id: 6.0, TEACUP.tool_id: 5.0}
        )
        system.run_episode(resident)
        assert system.session.completions == 1
        assert system.session.episodes[0].adl_name == "tea-making"
