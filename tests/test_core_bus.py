"""Unit tests for the typed event bus."""

from dataclasses import dataclass

from repro.core.bus import EventBus


@dataclass(frozen=True)
class Ping:
    value: int


@dataclass(frozen=True)
class Pong:
    value: int


class TestDispatch:
    def test_handler_receives_event(self):
        bus = EventBus()
        seen = []
        bus.subscribe(Ping, seen.append)
        bus.publish(Ping(1))
        assert seen == [Ping(1)]

    def test_exact_type_dispatch_only(self):
        bus = EventBus()
        pings, pongs = [], []
        bus.subscribe(Ping, pings.append)
        bus.subscribe(Pong, pongs.append)
        bus.publish(Ping(1))
        bus.publish(Pong(2))
        assert pings == [Ping(1)]
        assert pongs == [Pong(2)]

    def test_publish_returns_handler_count(self):
        bus = EventBus()
        bus.subscribe(Ping, lambda e: None)
        bus.subscribe(Ping, lambda e: None)
        assert bus.publish(Ping(1)) == 2
        assert bus.publish(Pong(1)) == 0

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe(Ping, seen.append)
        unsubscribe()
        bus.publish(Ping(1))
        assert seen == []

    def test_unsubscribe_twice_is_noop(self):
        bus = EventBus()
        unsubscribe = bus.subscribe(Ping, lambda e: None)
        unsubscribe()
        unsubscribe()

    def test_handler_added_during_publish_not_called(self):
        bus = EventBus()
        seen = []

        def first(event):
            seen.append("first")
            bus.subscribe(Ping, lambda e: seen.append("late"))

        bus.subscribe(Ping, first)
        bus.publish(Ping(1))
        assert seen == ["first"]

    def test_counters(self):
        bus = EventBus()
        bus.subscribe(Ping, lambda e: None)
        bus.publish(Ping(1))
        bus.publish(Pong(2))
        assert bus.events_published == 2
        assert bus.handler_count(Ping) == 1
        assert bus.handler_count(Pong) == 0
