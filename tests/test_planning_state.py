"""Unit tests for the planning state space."""

from repro.core.adl import IDLE_STEP_ID
from repro.planning.state import PlanningState, episode_states, state_space


class TestPlanningState:
    def test_is_tuple(self):
        state = PlanningState(1, 2)
        assert state == (1, 2)
        assert state.previous == 1
        assert state.current == 2

    def test_repr_paper_notation(self):
        assert repr(PlanningState(0, 3)) == "<0,3>"

    def test_hashable(self):
        assert len({PlanningState(1, 2), PlanningState(1, 2)}) == 1


class TestStateSpace:
    def test_size_with_idle(self, tea_adl):
        # 5 ids (4 steps + idle), minus 5 self-loops = 20.
        assert len(state_space(tea_adl)) == 20

    def test_size_without_idle(self, tea_adl):
        assert len(state_space(tea_adl, include_idle=False)) == 12

    def test_no_self_loops(self, tea_adl):
        assert all(s.previous != s.current for s in state_space(tea_adl))

    def test_deterministic_order(self, tea_adl):
        assert state_space(tea_adl) == state_space(tea_adl)

    def test_contains_initial_states(self, tea_adl):
        states = state_space(tea_adl)
        for step_id in tea_adl.step_ids:
            assert PlanningState(IDLE_STEP_ID, step_id) in states


class TestEpisodeStates:
    def test_trajectory(self):
        assert episode_states([1, 2, 3]) == [
            PlanningState(0, 1),
            PlanningState(1, 2),
            PlanningState(2, 3),
        ]

    def test_single_step(self):
        assert episode_states([7]) == [PlanningState(0, 7)]

    def test_empty(self):
        assert episode_states([]) == []
