"""Unit tests for the multi-routine planner (future-work item 1)."""

import numpy as np
import pytest

from repro.adls.dressing import dressing_definition, dressing_routines
from repro.core.errors import RoutineError
from repro.planning.multi_routine import MultiRoutinePlanner


@pytest.fixture(scope="module")
def trained():
    definition = dressing_definition()
    adl = definition.adl
    routine_a, routine_b = dressing_routines(adl)
    log = [list(routine_a.step_ids)] * 40 + [list(routine_b.step_ids)] * 40
    rng = np.random.default_rng(0)
    order = rng.permutation(len(log))
    planner = MultiRoutinePlanner(adl, rng=np.random.default_rng(1))
    planner.train([log[i] for i in order])
    return planner, routine_a, routine_b


class TestClustering:
    def test_two_clusters_found(self, trained):
        planner, routine_a, routine_b = trained
        found = {cluster.routine for cluster in planner.clusters}
        assert found == {routine_a, routine_b}

    def test_support_counts(self, trained):
        planner, *_ = trained
        assert sorted(c.support for c in planner.clusters) == [40, 40]

    def test_noise_below_support_dropped(self):
        definition = dressing_definition()
        adl = definition.adl
        routine_a, routine_b = dressing_routines(adl)
        log = [list(routine_a.step_ids)] * 50 + [list(routine_b.step_ids)] * 2
        planner = MultiRoutinePlanner(adl, min_support_fraction=0.1)
        planner.train(log)
        assert len(planner.clusters) == 1

    def test_empty_log_rejected(self):
        planner = MultiRoutinePlanner(dressing_definition().adl)
        with pytest.raises(ValueError):
            planner.train([])


class TestIdentification:
    def test_unambiguous_prefix_identifies(self, trained):
        planner, routine_a, routine_b = trained
        assert planner.identify(list(routine_a.step_ids[:2])) == routine_a
        assert planner.identify(list(routine_b.step_ids[:1])) == routine_b

    def test_posterior_sums_to_one(self, trained):
        planner, routine_a, _ = trained
        posterior = planner.posterior(list(routine_a.step_ids[:1]))
        assert sum(posterior.values()) == pytest.approx(1.0)

    def test_contradicting_prefix_gets_vanishing_mass(self, trained):
        planner, routine_a, routine_b = trained
        posterior = planner.posterior(list(routine_b.step_ids[:2]))
        assert posterior[routine_a] < 1e-3

    def test_untrained_planner_raises(self):
        planner = MultiRoutinePlanner(dressing_definition().adl)
        with pytest.raises(RoutineError):
            planner.posterior([1])


class TestPrediction:
    def test_predicts_along_both_routines(self, trained):
        planner, routine_a, routine_b = trained
        for routine in (routine_a, routine_b):
            steps = list(routine.step_ids)
            for index in range(len(steps) - 1):
                prediction = planner.predict(steps[: index + 1])
                assert prediction.tool_id == steps[index + 1]

    def test_empty_prefix_rejected(self, trained):
        planner, *_ = trained
        with pytest.raises(RoutineError):
            planner.predict([])


class TestValidation:
    def test_support_fraction_bounds(self):
        with pytest.raises(ValueError):
            MultiRoutinePlanner(
                dressing_definition().adl, min_support_fraction=1.0
            )
