"""Unit tests for the deployed sensor network and base station."""

import pytest

from repro.core.config import RadioConfig, SensingConfig
from repro.sensors.network import SensorNetwork
from repro.sim.kernel import Simulator
from repro.sim.random import RandomStreams


@pytest.fixture
def network(sim, tea_definition):
    return SensorNetwork(
        sim=sim,
        adl=tea_definition.adl,
        sensing_config=SensingConfig(),
        radio_config=RadioConfig(loss_probability=0.0),
        streams=RandomStreams(0),
        profiles=tea_definition.signal_profiles,
    )


class TestTopology:
    def test_one_node_per_tool(self, network, tea_definition):
        assert set(network.nodes) == set(tea_definition.adl.step_ids)

    def test_node_and_source_lookup(self, network):
        assert network.node(1).uid == 1
        assert network.source(1) is network.nodes[1].source

    def test_profiles_applied(self, network, tea_definition):
        for tool_id, profile in tea_definition.signal_profiles.items():
            assert network.source(tool_id).profile == profile


class TestUplink:
    def test_usage_reaches_base_station(self, sim, network):
        frames = []
        network.base_station.frames.subscribe(frames.append)
        network.start()
        network.source(3).begin_use(0.0, duration=5.0)
        sim.run_until(6.0)
        assert frames
        assert frames[0].node_uid == 3
        assert network.base_station.frames_received >= 1

    def test_stop_silences_network(self, sim, network):
        frames = []
        network.base_station.frames.subscribe(frames.append)
        network.start()
        network.stop()
        network.source(3).begin_use(sim.now, duration=5.0)
        sim.run_until(10.0)
        assert frames == []


class TestDownlink:
    def test_led_command_reaches_node(self, sim, network):
        network.base_station.send_led_command(2, "green", 3)
        sim.run()
        assert network.node(2).leds["green"].total_blinks == 3

    def test_led_command_other_nodes_untouched(self, sim, network):
        network.base_station.send_led_command(2, "red", 5)
        sim.run()
        assert network.node(1).leds["red"].total_blinks == 0
        assert network.node(2).leds["red"].total_blinks == 5


class TestAdaptiveThresholds:
    def test_agc_attached_when_requested(self, sim, tea_definition):
        from repro.sim.random import RandomStreams

        network = SensorNetwork(
            sim=sim,
            adl=tea_definition.adl,
            sensing_config=SensingConfig(),
            radio_config=RadioConfig(loss_probability=0.0),
            streams=RandomStreams(0),
            adaptive_thresholds=True,
        )
        assert all(node.agc is not None for node in network.nodes.values())

    def test_default_is_fixed_thresholds(self, network):
        assert all(node.agc is None for node in network.nodes.values())

    def test_adaptive_network_still_detects_usage(self, sim, tea_definition):
        from repro.sim.random import RandomStreams

        network = SensorNetwork(
            sim=sim,
            adl=tea_definition.adl,
            sensing_config=SensingConfig(),
            radio_config=RadioConfig(loss_probability=0.0),
            streams=RandomStreams(0),
            profiles=tea_definition.signal_profiles,
            adaptive_thresholds=True,
        )
        frames = []
        network.base_station.frames.subscribe(frames.append)
        network.start()
        sim.run_until(30.0)  # settle
        network.source(3).begin_use(sim.now, duration=5.0)
        sim.run_until(sim.now + 6.0)
        assert frames
