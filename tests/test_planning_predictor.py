"""Unit tests for the next-step predictor."""

import numpy as np
import pytest

from repro.core.errors import NotConvergedError
from repro.planning.predictor import NextStepPredictor
from repro.planning.state import PlanningState, episode_states
from repro.planning.trainer import RoutineTrainer


@pytest.fixture
def training(tea_adl):
    trainer = RoutineTrainer(tea_adl, rng=np.random.default_rng(0))
    routine = tea_adl.canonical_routine()
    return trainer.train([list(routine.step_ids)] * 120, routine=routine)


class TestFromTraining:
    def test_converged_training_builds(self, training):
        predictor = NextStepPredictor.from_training(training)
        assert predictor.converged

    def test_unconverged_training_rejected(self, tea_adl):
        trainer = RoutineTrainer(tea_adl, rng=np.random.default_rng(0))
        result = trainer.train([list(tea_adl.step_ids)] * 3)
        with pytest.raises(NotConvergedError):
            NextStepPredictor.from_training(result)

    def test_unconverged_allowed_when_not_required(self, tea_adl):
        trainer = RoutineTrainer(tea_adl, rng=np.random.default_rng(0))
        result = trainer.train([list(tea_adl.step_ids)] * 3)
        predictor = NextStepPredictor.from_training(
            result, require_converged=False
        )
        assert not predictor.converged


class TestPrediction:
    def test_predicts_routine_next_steps(self, tea_adl, training):
        predictor = NextStepPredictor.from_training(training)
        states = episode_states(tea_adl.step_ids)
        for index in range(len(states) - 1):
            assert (
                predictor.predict(states[index]).tool_id
                == states[index + 1].current
            )

    def test_accepts_plain_tuple(self, training):
        predictor = NextStepPredictor.from_training(training)
        assert predictor.predict((0, 1)) == predictor.predict(PlanningState(0, 1))

    def test_predict_next_tool_shortcut(self, training):
        predictor = NextStepPredictor.from_training(training)
        assert predictor.predict_next_tool(0, 1) == 2

    def test_empty_action_space_rejected(self, training):
        with pytest.raises(ValueError):
            NextStepPredictor(training.learner.q, [])


class TestMemoizedPrediction:
    def all_states(self, tea_adl):
        ids = [0] + list(tea_adl.step_ids)
        return [(prev, cur) for prev in ids for cur in ids]

    def test_memoized_matches_unmemoized(self, tea_adl, training):
        memoized = NextStepPredictor(
            training.learner.q, training.actions, memoize=True
        )
        plain = NextStepPredictor(
            training.learner.q, training.actions, memoize=False
        )
        for state in self.all_states(tea_adl):
            assert memoized.predict(state) == plain.predict(state)

    def test_env_override_disables_memoization(self, training, monkeypatch):
        monkeypatch.setenv("REPRO_INFER_BACKEND", "scalar")
        predictor = NextStepPredictor(training.learner.q, training.actions)
        assert not predictor._memoize
        monkeypatch.setenv("REPRO_INFER_BACKEND", "batched")
        predictor = NextStepPredictor(training.learner.q, training.actions)
        assert predictor._memoize

    def test_learner_writes_invalidate_memo(self, tea_adl, training):
        """Online adaptation writes through the deployed predictor's
        table; memoized predictions must track them, not go stale."""
        predictor = NextStepPredictor(
            training.learner.q, training.actions, memoize=True
        )
        plain = NextStepPredictor(
            training.learner.q, training.actions, memoize=False
        )
        states = self.all_states(tea_adl)
        for state in states:
            predictor.predict(state)
        q = training.learner.q
        for state in states:
            for action in training.actions:
                q.set(PlanningState(*state), action, -float(action.tool_id))
        for state in states:
            assert predictor.predict(state) == plain.predict(state)
