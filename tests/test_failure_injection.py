"""Failure-injection tests: the system must degrade, not derail.

Dead nodes, radio blackouts and abandoned episodes are everyday
events in a real deployment; these tests pin how each one manifests
and that the system recovers for the next episode.
"""

import pytest

from repro.adls.tea_making import KETTLE, POT, TEABOX, TEACUP
from repro.core.config import CoReDAConfig
from repro.core.errors import CoReDAError
from repro.core.system import CoReDA
from repro.resident.compliance import ComplianceModel

RELIABLE = {POT.tool_id: 6.0, TEACUP.tool_id: 5.0}


@pytest.fixture
def system(tea_definition):
    system = CoReDA.build(tea_definition, CoReDAConfig(seed=33))
    system.train_offline(episodes=120)
    system.start()
    return system


class TestDeadNode:
    def test_dead_node_presents_as_wrong_tool_skip(self, system):
        """A dead pot node makes the kettle step look like a skip.

        The user *did* pour the water, but the system cannot see it:
        the next detection (kettle) mismatches the expected pot, so a
        wrong-tool reminder fires.  The episode still completes -- the
        user is following their routine regardless.
        """
        system.network.node(POT.tool_id).stop()
        resident = system.create_resident(
            compliance=ComplianceModel.perfect(),
            handling_overrides=RELIABLE,
            name="dead-node",
        )
        before = len(system.reminding.reminders)
        outcome = system.run_episode(resident, horizon=3600.0)
        assert outcome.completed
        new = system.reminding.reminders[before:]
        # Guidance noise occurred (the system believed the user erred)...
        assert len(new) >= 1
        # ...but the kettle and cup steps were still sensed.
        assert any(
            record.tool_id == KETTLE.tool_id
            for record in system.sensing.history.records()
        )

    def test_restarted_node_recovers(self, system):
        node = system.network.node(POT.tool_id)
        node.stop()
        node.start()
        resident = system.create_resident(
            handling_overrides=RELIABLE, name="recovered"
        )
        before = len(system.sensing.history.of_tool(POT.tool_id))
        outcome = system.run_episode(resident, horizon=3600.0)
        assert outcome.completed
        assert len(system.sensing.history.of_tool(POT.tool_id)) > before


class TestRadioBlackout:
    def test_total_loss_silences_sensing(self, tea_definition):
        from dataclasses import replace

        from repro.core.config import RadioConfig

        config = replace(
            CoReDAConfig(seed=5),
            radio=RadioConfig(loss_probability=0.99, max_retries=1),
        )
        system = CoReDA.build(tea_definition, config)
        system.train_offline(episodes=120)
        system.start()
        system.network.source(TEABOX.tool_id).begin_use(
            system.sim.now, duration=6.0
        )
        system.sim.run_until(system.sim.now + 10.0)
        # Detections happened on the node but (almost) nothing crossed
        # the dead air.
        node = system.network.node(TEABOX.tool_id)
        assert node.usage_reports >= 1
        assert len(system.sensing.history) <= node.usage_reports
        assert system.network.medium.stats.dropped >= 1

    def test_eeprom_retains_what_radio_lost(self, tea_definition):
        from dataclasses import replace

        from repro.core.config import RadioConfig

        config = replace(
            CoReDAConfig(seed=5),
            radio=RadioConfig(loss_probability=0.99, max_retries=0),
        )
        system = CoReDA.build(tea_definition, config)
        system.start()
        system.network.source(TEABOX.tool_id).begin_use(
            system.sim.now, duration=6.0
        )
        system.sim.run_until(system.sim.now + 10.0)
        node = system.network.node(TEABOX.tool_id)
        # Every detection was persisted locally even though the
        # uplink was dead -- the recovery path a real deployment needs.
        assert len(node.eeprom) == node.usage_reports >= 1


class TestAbandonedEpisode:
    def test_stuck_episode_raises_horizon_error(self, system):
        # A resident who dwells on the first step longer than the
        # horizon never finishes; run_episode must fail loudly rather
        # than return a bogus outcome.
        resident = system.create_resident(
            dwell_overrides={TEABOX.tool_id: 10_000.0},
            handling_overrides=RELIABLE,
            name="glacial",
        )
        with pytest.raises(CoReDAError):
            system.run_episode(resident, horizon=60.0)
        system.planning.reset_episode()
        system.sensing.reset_episode()

    def test_interrupted_resident_can_restart(self, system):
        resident = system.create_resident(
            handling_overrides=RELIABLE, name="abandoner"
        )
        process = resident.start_episode()
        system.sim.run_until(system.sim.now + 2.0)
        process.interrupt()
        system.planning.reset_episode()
        system.sensing.reset_episode()
        # start_episode builds a fresh behaviour generator: the same
        # resident simply begins the activity again.
        outcome = system.run_episode(resident, horizon=3600.0)
        assert outcome.completed

    def test_next_episode_clean_after_reset(self, system):
        resident = system.create_resident(
            handling_overrides=RELIABLE, name="abandoner2"
        )
        process = resident.start_episode()
        system.sim.run_until(system.sim.now + 2.0)
        process.interrupt()
        system.planning.reset_episode()
        system.sensing.reset_episode()
        fresh = system.create_resident(
            handling_overrides=RELIABLE, name="fresh"
        )
        outcome = system.run_episode(fresh, horizon=3600.0)
        assert outcome.completed


class TestForeignTraffic:
    def test_unknown_node_ignored_end_to_end(self, system):
        """A frame from a uid outside the deployment is dropped."""
        from repro.sensors.radio import BASE_STATION_UID, Frame

        before = len(system.sensing.history)
        system.network.medium.transmit(
            Frame(src_uid=999, dst_uid=BASE_STATION_UID, kind="usage",
                  sequence=1)
        )
        system.sim.run_until(system.sim.now + 1.0)
        assert len(system.sensing.history) == before
        assert system.sensing.frames_ignored >= 1
