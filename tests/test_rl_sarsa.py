"""Unit tests for SARSA(λ)."""

import pytest

from repro.rl.policies import EpsilonGreedyPolicy
from repro.rl.sarsa import SarsaLambdaLearner

ACTIONS = ["left", "right"]


class TestUpdates:
    def test_terminal_update(self):
        learner = SarsaLambdaLearner(learning_rate=0.5)
        delta = learner.observe("s", "right", 10.0, "t", None, done=True)
        assert delta == 10.0
        assert learner.q.value("s", "right") == 5.0

    def test_bootstrap_uses_next_action_not_max(self):
        learner = SarsaLambdaLearner(learning_rate=1.0, discount=0.5,
                                     trace_decay=0.0)
        learner.q.set("s2", "left", 4.0)
        learner.q.set("s2", "right", 8.0)
        # On-policy: target uses the action actually chosen ("left"),
        # not the max ("right").
        learner.observe("s1", "left", 1.0, "s2", "left", done=False)
        assert learner.q.value("s1", "left") == pytest.approx(1.0 + 0.5 * 4.0)

    def test_missing_next_action_rejected(self):
        learner = SarsaLambdaLearner()
        with pytest.raises(ValueError):
            learner.observe("s", "left", 0.0, "s2", None, done=False)

    def test_traces_propagate_along_chain(self):
        learner = SarsaLambdaLearner(learning_rate=0.5, discount=0.99,
                                     trace_decay=1.0)
        learner.begin_episode()
        learner.observe("s1", "right", 0.0, "s2", "right", done=False)
        learner.observe("s2", "right", 10.0, "t", None, done=True)
        assert learner.q.value("s1", "right") > 0.0

    def test_terminal_resets_traces(self):
        learner = SarsaLambdaLearner()
        learner.observe("s", "right", 1.0, "t", None, done=True)
        assert len(learner.traces) == 0


class TestConvergence:
    def test_learns_chain_on_policy(self, rng):
        learner = SarsaLambdaLearner(
            learning_rate=0.3,
            discount=0.9,
            trace_decay=0.5,
            policy=EpsilonGreedyPolicy(0.2),
        )
        for _ in range(400):
            learner.begin_episode()
            state = "s1"
            action, _ = learner.select_action(state, ACTIONS, rng)
            for _ in range(20):
                if action == "right":
                    next_state = "s2" if state == "s1" else "goal"
                    done = next_state == "goal"
                    reward = 10.0 if done else 0.0
                else:
                    next_state, done, reward = state, False, 0.0
                if done:
                    learner.observe(state, action, reward, next_state, None, True)
                    break
                next_action, _ = learner.select_action(next_state, ACTIONS, rng)
                learner.observe(
                    state, action, reward, next_state, next_action, False
                )
                state, action = next_state, next_action
        assert learner.greedy_action("s1", ACTIONS) == "right"
        assert learner.greedy_action("s2", ACTIONS) == "right"


class TestValidation:
    def test_discount_bounds(self):
        with pytest.raises(ValueError):
            SarsaLambdaLearner(discount=1.0)

    def test_trace_decay_bounds(self):
        with pytest.raises(ValueError):
            SarsaLambdaLearner(trace_decay=-0.1)
