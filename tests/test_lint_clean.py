"""Tier-1 gate: the shipped sources stay lint-clean.

Runs the full repro.analysis rule pack over ``src/repro`` exactly as
the ``repro lint`` CLI (and the Makefile ``lint`` target) would, and
fails on any non-suppressed finding.  Keeping this in the tier-1
suite means a determinism hazard cannot land without either a fix or
an explicit, justified ``# repro: allow[RULE]`` comment.
"""

from pathlib import Path

from repro.analysis import all_rule_ids, lint_paths

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def test_source_tree_is_lint_clean():
    report = lint_paths([str(SRC)])
    assert report.files_checked > 50
    offenders = "\n".join(
        f"{f.location}: {f.rule}: {f.message}" for f in report.active
    )
    assert not report.active, f"lint findings in src/repro:\n{offenders}"


def test_full_rule_pack_is_active():
    # The gate is only meaningful if every shipped rule participates,
    # including the whole-program families (VER/PAR) and the
    # free-list contract.
    assert set(all_rule_ids()) >= {
        "DET001", "DET002", "DET003", "DET004",
        "SIM001", "SIM002", "SIM003", "PERF001",
        "VER001", "PAR001", "PAR002", "PAR003",
    }


def test_committed_baseline_is_current():
    # The committed baseline exists so a future rule can land
    # strict-on-new-findings.  Today it must be empty (the tree is
    # clean) and never stale: every entry must correspond to a live
    # finding, or the file is hiding debt that was already paid.
    from repro.analysis import Baseline

    baseline_file = SRC.parent.parent / "lint-baseline.json"
    assert baseline_file.is_file(), "lint-baseline.json must be committed"
    baseline = Baseline.load(str(baseline_file))
    report = lint_paths([str(SRC)])
    stale = baseline.stale_entries(report)
    assert not stale, f"stale baseline entries (debt already paid): {stale}"
    assert len(baseline) == 0, (
        "src/repro lints clean; the committed baseline must stay empty "
        "until a new rule lands with known debt"
    )


def test_suppressions_are_justified():
    # Every inline allow[] in the tree carries a reason after the
    # bracket, so `git grep 'repro: allow'` reads as an audit log.
    import re

    pattern = re.compile(r"#\s*repro:\s*allow\[[A-Za-z0-9_,\s]+\](.*)")
    bare = []
    for path in sorted(SRC.rglob("*.py")):
        for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            match = pattern.search(line)
            if match and not match.group(1).strip():
                bare.append(f"{path}:{number}")
    assert not bare, f"suppressions without a reason: {bare}"
