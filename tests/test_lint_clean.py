"""Tier-1 gate: the shipped sources stay lint-clean.

Runs the full repro.analysis rule pack over ``src/repro`` exactly as
the ``repro lint`` CLI (and the Makefile ``lint`` target) would, and
fails on any non-suppressed finding.  Keeping this in the tier-1
suite means a determinism hazard cannot land without either a fix or
an explicit, justified ``# repro: allow[RULE]`` comment.
"""

from pathlib import Path

from repro.analysis import all_rule_ids, lint_paths

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def test_source_tree_is_lint_clean():
    report = lint_paths([str(SRC)])
    assert report.files_checked > 50
    offenders = "\n".join(
        f"{f.location}: {f.rule}: {f.message}" for f in report.active
    )
    assert not report.active, f"lint findings in src/repro:\n{offenders}"


def test_full_rule_pack_is_active():
    # The gate is only meaningful if every shipped rule participates.
    assert set(all_rule_ids()) >= {
        "DET001", "DET002", "DET003", "DET004",
        "SIM001", "SIM002", "PERF001",
    }


def test_suppressions_are_justified():
    # Every inline allow[] in the tree carries a reason after the
    # bracket, so `git grep 'repro: allow'` reads as an audit log.
    import re

    pattern = re.compile(r"#\s*repro:\s*allow\[[A-Za-z0-9_,\s]+\](.*)")
    bare = []
    for path in sorted(SRC.rglob("*.py")):
        for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            match = pattern.search(line)
            if match and not match.group(1).strip():
                bare.append(f"{path}:{number}")
    assert not bare, f"suppressions without a reason: {bare}"
