"""Unit tests for the caregiver-burden study (small parameters)."""

import pytest

from repro.evalx.burden import BurdenRow, run_burden_study


class TestBurdenRow:
    def test_reduction_computation(self):
        row = BurdenRow(
            severity=0.5, episodes=10, completed=10, errors=8,
            caregiver_interventions=2,
        )
        assert row.errors_per_episode == 0.8
        assert row.burden_reduction == pytest.approx(0.75)

    def test_no_errors_means_no_reduction_figure(self):
        row = BurdenRow(
            severity=0.1, episodes=5, completed=5, errors=0,
            caregiver_interventions=0,
        )
        assert row.burden_reduction is None


class TestStudy:
    @pytest.fixture(scope="class")
    def result(self, registry):
        return run_burden_study(
            registry.get("tea-making"), severities=(0.2, 0.7), episodes=4,
        )

    def test_rows_per_severity(self, result):
        assert [row.severity for row in result.rows] == [0.2, 0.7]

    def test_all_episodes_complete_under_guidance(self, result):
        assert all(row.completed == row.episodes for row in result.rows)

    def test_severity_increases_errors(self, result):
        mild, severe = result.rows
        assert severe.errors >= mild.errors

    def test_render(self, result):
        table = result.to_table()
        assert "Burden reduction" in table
        assert "Caregiver-burden study" in table
