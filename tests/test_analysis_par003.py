"""PAR003 fixtures: frozen arena buffers thaw before element writes.

The zero-copy policy plane (PR 10) restores Q-tables over read-only
shared-memory views; the one sanctioned mutation path is the
copy-on-write guard ``if X._frozen: X._thaw()`` before the write.
These fixtures pin the rule's temporal logic (a guard *dominates* the
write -- mirror of VER001's bump-after), the alias tracking
(``flat = q._flat``), the whole-attribute-rebind exemption that
``_thaw`` itself relies on, the declared-entry-point exemption, and
caller absolution through the call graph.
"""

import textwrap

from repro.analysis import lint_source
from repro.analysis.core import ModuleContext, lint_modules


def par3_findings(source, path="src/repro/rl/fixture.py"):
    found = lint_source(textwrap.dedent(source), path, ["PAR003"])
    return [f for f in found if not f.suppressed]


def par3_findings_multi(*modules):
    contexts = [
        ModuleContext(path, textwrap.dedent(source))
        for path, source in modules
    ]
    return [
        f for f in lint_modules(contexts, ["PAR003"]) if not f.suppressed
    ]


class TestGuardShapes:
    def test_unguarded_write_flagged(self):
        found = par3_findings(
            """
            class T:
                def poke(self):
                    self._flat[0] = 1.0
            """
        )
        assert [f.rule for f in found] == ["PAR003"]
        assert "_thaw" in found[0].message

    def test_conditional_guard_dominates_later_writes(self):
        found = par3_findings(
            """
            class T:
                def poke(self, cond):
                    if self._frozen:
                        self._thaw()
                    if cond:
                        self._flat[0] = 1.0
                    else:
                        self._written[3] = 1
            """
        )
        assert found == []

    def test_bare_thaw_call_is_a_guard(self):
        found = par3_findings(
            """
            def fused(q, off, v):
                q._thaw()
                flat = q._flat
                flat[off] = v
            """
        )
        assert found == []

    def test_guard_in_one_branch_does_not_cover_after(self):
        found = par3_findings(
            """
            class T:
                def poke(self, flag):
                    if flag:
                        if self._frozen:
                            self._thaw()
                    self._flat[0] = 1.0
            """
        )
        assert [f.rule for f in found] == ["PAR003"]

    def test_guard_after_the_write_does_not_count(self):
        found = par3_findings(
            """
            class T:
                def poke(self):
                    self._flat[0] = 1.0
                    if self._frozen:
                        self._thaw()
            """
        )
        assert [f.rule for f in found] == ["PAR003"]

    def test_frozen_test_without_thaw_is_not_a_guard(self):
        found = par3_findings(
            """
            class T:
                def poke(self):
                    if self._frozen:
                        return
                    self._flat[0] = 1.0
            """
        )
        # The early return *does* protect at runtime, but the rule is
        # deliberately structural: the sanctioned idiom is the thaw.
        assert [f.rule for f in found] == ["PAR003"]


class TestExemptions:
    def test_whole_attribute_rebind_is_exempt(self):
        # Exactly what _thaw does: install fresh private buffers.
        found = par3_findings(
            """
            class T:
                def refresh(self, n):
                    self._flat = [0.0] * n
                    self._written = bytearray(n)
            """
        )
        assert found == []

    def test_declared_thaw_entry_point_is_exempt(self):
        found = par3_findings(
            """
            class DenseQTable:
                def _thaw(self):
                    flat = self._flat
                    for index in range(3):
                        flat[index] = float(flat[index])
            """
        )
        assert found == []

    def test_same_method_name_on_other_class_not_exempt(self):
        found = par3_findings(
            """
            class Other:
                def _thaw(self):
                    self._flat[0] = 1.0
            """
        )
        assert [f.rule for f in found] == ["PAR003"]

    def test_mutating_method_call_on_buffer_flagged(self):
        found = par3_findings(
            """
            def extend(q, values):
                q._flat.extend(values)
            """
        )
        assert [f.rule for f in found] == ["PAR003"]


class TestCallerAbsolution:
    def test_helper_guarded_at_every_call_site_is_clean(self):
        found = par3_findings(
            """
            class T:
                def _store(self, off, v):
                    self._flat[off] = v

                def entry(self, off, v):
                    if self._frozen:
                        self._thaw()
                    self._store(off, v)
            """
        )
        assert found == []

    def test_helper_with_one_unguarded_caller_flagged(self):
        found = par3_findings(
            """
            class T:
                def _store(self, off, v):
                    self._flat[off] = v

                def safe(self, off, v):
                    if self._frozen:
                        self._thaw()
                    self._store(off, v)

                def unsafe(self, off, v):
                    self._store(off, v)
            """
        )
        assert [f.rule for f in found] == ["PAR003"]
        assert "_store" in found[0].message

    def test_absolution_crosses_modules(self):
        found = par3_findings_multi(
            (
                "src/repro/rl/helper.py",
                """
                def apply_update(q, off, v):
                    flat = q._flat
                    flat[off] = v
                """,
            ),
            (
                "src/repro/rl/caller.py",
                """
                from repro.rl.helper import apply_update

                def learn(q, off, v):
                    if q._frozen:
                        q._thaw()
                    apply_update(q, off, v)
                """,
            ),
        )
        assert found == []

    def test_uncalled_helper_stays_flagged(self):
        found = par3_findings(
            """
            def orphan(q, off, v):
                q._written[off] = 1
            """
        )
        assert [f.rule for f in found] == ["PAR003"]


class TestShippedIdioms:
    def test_the_dense_grow_idiom_is_clean(self):
        # The shape shipped in repro.rl.dense: guard at the top, then
        # fresh-list rebinds and interleaved element writes.
        found = par3_findings(
            """
            class DenseQTable:
                def _grow(self, rows, cols):
                    if self._frozen:
                        self._thaw()
                    fresh = [0.0] * (rows * cols)
                    for index in range(rows):
                        fresh[index] = self._flat[index]
                    self._flat = fresh
            """
        )
        assert found == []

    def test_fused_learner_shape_is_clean(self):
        found = par3_findings(
            """
            def observe(q, off, target, alpha, replacing):
                q._grow()
                if q._frozen:
                    q._thaw()
                flat = q._flat
                if replacing:
                    flat[off] = target
                else:
                    flat[off] = flat[off] + alpha * target
                q.version += 1
            """
        )
        assert found == []
