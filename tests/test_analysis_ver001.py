"""VER001 fixtures: Q-buffer mutations must bump the version counter.

The load-bearing test is the PR 8 regression: the fused dense learner
paths wrote ``flat[off] = ...`` (with ``flat = q._flat`` hoisted)
without bumping ``q.version``, leaving memoized greedy policies stale
under online adaptation.  That bug shipped because no per-module rule
could connect the write to the contract; these fixtures pin that the
whole-program rule catches it -- direct, through a local alias, and
through a helper call one module away -- without flagging the
legitimate idioms (block-level bumps after branch writes, bump
helpers, whole-buffer rebinds in ``copy()``, fresh local lists in
``_grow``).
"""

import textwrap

from repro.analysis import lint_source
from repro.analysis.core import ModuleContext, lint_modules


def ver_findings(source, path="src/repro/rl/fixture.py"):
    found = lint_source(textwrap.dedent(source), path, ["VER001"])
    return [f for f in found if not f.suppressed]


def ver_findings_multi(*modules):
    contexts = [
        ModuleContext(path, textwrap.dedent(source))
        for path, source in modules
    ]
    return [
        f for f in lint_modules(contexts, ["VER001"]) if not f.suppressed
    ]


class TestPr8Regression:
    """The exact shape of the PR 8 stale-version bug."""

    def test_dense_fused_write_without_bump_flagged(self):
        # tdlambda's fused dense path as it was *before* the PR 8
        # fix: buffer hoisted to a local, element writes in both
        # branches, no version bump anywhere.
        found = ver_findings(
            """
            class TDLambdaQLearner:
                def observe(self, q, off, target, alpha, replacing):
                    flat = q._flat
                    if replacing:
                        flat[off] = target
                    else:
                        flat[off] = flat[off] + alpha * target
            """
        )
        assert [f.rule for f in found] == ["VER001", "VER001"]
        assert all("version" in f.message for f in found)

    def test_block_level_bump_after_branches_is_clean(self):
        # ... and as it is after the fix: one bump at block level
        # covers the writes in both branches.
        found = ver_findings(
            """
            class TDLambdaQLearner:
                def observe(self, q, off, target, alpha, replacing):
                    flat = q._flat
                    if replacing:
                        flat[off] = target
                    else:
                        flat[off] = flat[off] + alpha * target
                    q.version += 1
            """
        )
        assert found == []

    def test_bump_in_only_one_branch_still_flagged(self):
        found = ver_findings(
            """
            def fused(q, cond, off, v):
                flat = q._flat
                if cond:
                    flat[off] = v
                    q.version += 1
                else:
                    flat[off] = v
            """
        )
        assert len(found) == 1
        # The uncovered write is the else-branch one.
        assert found[0].line == 8


class TestHelperIndirection:
    def test_write_in_helper_with_non_bumping_caller_flagged(self):
        found = ver_findings_multi(
            (
                "src/repro/rl/helpers.py",
                """
                def apply_batch(q, offsets, values):
                    flat = q._flat
                    for off, v in zip(offsets, values):
                        flat[off] = v
                """,
            ),
            (
                "src/repro/rl/learner.py",
                """
                from repro.rl.helpers import apply_batch

                def train_step(q, offsets, values):
                    apply_batch(q, offsets, values)
                """,
            ),
        )
        assert [f.rule for f in found] == ["VER001"]
        assert found[0].path == "src/repro/rl/helpers.py"

    def test_caller_bump_after_helper_call_absolves(self):
        found = ver_findings_multi(
            (
                "src/repro/rl/helpers.py",
                """
                def apply_batch(q, offsets, values):
                    flat = q._flat
                    for off, v in zip(offsets, values):
                        flat[off] = v
                """,
            ),
            (
                "src/repro/rl/learner.py",
                """
                from repro.rl.helpers import apply_batch

                def train_step(q, offsets, values):
                    apply_batch(q, offsets, values)
                    q.version += 1
                """,
            ),
        )
        assert found == []

    def test_one_delinquent_caller_among_many_flags(self):
        found = ver_findings(
            """
            def apply(q, off, v):
                q._flat[off] = v

            def good(q):
                apply(q, 0, 1.0)
                q.version += 1

            def bad(q):
                apply(q, 0, 1.0)
            """
        )
        assert [f.rule for f in found] == ["VER001"]

    def test_bump_helper_call_counts_as_bump(self):
        found = ver_findings(
            """
            class Table:
                def _touch(self):
                    self.version += 1

                def set(self, k, v):
                    self._flat[k] = v
                    self._touch()
            """
        )
        assert found == []

    def test_recursive_cycle_stays_conservative(self):
        found = ver_findings(
            """
            def ping(q, n):
                q._flat[n] = 0.0
                if n:
                    pong(q, n - 1)

            def pong(q, n):
                ping(q, n)
            """
        )
        assert [f.rule for f in found] == ["VER001"]


class TestExemptIdioms:
    def test_whole_attribute_rebind_is_exempt(self):
        # DenseQTable.copy(): installs a fresh buffer, never mutates
        # the live one.
        found = ver_findings(
            """
            class Table:
                def copy(self):
                    clone = Table.__new__(Table)
                    clone._flat = self._flat[:]
                    clone._q = dict(self._q)
                    return clone
            """
        )
        assert found == []

    def test_fresh_local_list_is_not_an_alias(self):
        # DenseQTable._grow(): `flat` is a brand-new list, not a view
        # of the live buffer; writing into it needs no bump.
        found = ver_findings(
            """
            class Table:
                def _grow(self, n, fill):
                    flat = [fill] * n
                    old = self._flat
                    for i, v in enumerate(old):
                        flat[i] = v
                    self._flat = flat
            """
        )
        assert found == []

    def test_direct_bump_after_sparse_write_is_clean(self):
        found = ver_findings(
            """
            class QTable:
                def set(self, key, value):
                    self._q[key] = value
                    self.version += 1
            """
        )
        assert found == []


class TestWriteShapes:
    def test_sparse_dict_write_without_bump_flagged(self):
        found = ver_findings(
            """
            class QTable:
                def set(self, key, value):
                    self._q[key] = value
            """
        )
        assert [f.rule for f in found] == ["VER001"]

    def test_mutating_method_call_on_buffer_flagged(self):
        found = ver_findings(
            """
            class QTable:
                def merge(self, other):
                    self._q.update(other)
            """
        )
        assert [f.rule for f in found] == ["VER001"]

    def test_augmented_write_through_alias_flagged(self):
        found = ver_findings(
            """
            def decay(q, off, gamma):
                flat = q._flat
                flat[off] *= gamma
            """
        )
        assert [f.rule for f in found] == ["VER001"]

    def test_unrelated_attribute_writes_ignored(self):
        found = ver_findings(
            """
            class Other:
                def set(self, k, v):
                    self._cache[k] = v
                    self._pairs.append((k, v))
            """
        )
        assert found == []

    def test_suppression_applies(self):
        found = lint_source(
            textwrap.dedent(
                """
                def poke(q, off, v):
                    q._flat[off] = v  # repro: allow[VER001] test fixture
                """
            ),
            "src/repro/rl/fixture.py",
            ["VER001"],
        )
        assert [f.suppressed for f in found] == [True]
