"""Unit tests for Double Q-learning (incl. the maximization-bias demo)."""

import numpy as np
import pytest

from repro.rl.double_q import DoubleQLearner
from repro.rl.policies import EpsilonGreedyPolicy
from repro.rl.tdlambda import TDLambdaQLearner

ACTIONS = ["left", "right"]


class TestUpdates:
    def test_terminal_update(self, rng):
        learner = DoubleQLearner(learning_rate=0.5)
        learner.observe("s", "right", 10.0, "t", ACTIONS, done=True, rng=rng)
        # Exactly one table got the update; the combined view averages.
        assert learner.q.value("s", "right") == 2.5
        values = {learner.q_a.value("s", "right"),
                  learner.q_b.value("s", "right")}
        assert values == {0.0, 5.0}

    def test_cross_evaluation(self):
        learner = DoubleQLearner(learning_rate=1.0, discount=0.5)
        # Table A thinks "left" is best at s2; B holds its value.
        learner.q_a.set("s2", "left", 10.0)
        learner.q_b.set("s2", "left", 4.0)
        # Deterministic alternation without rng: update #0 -> table A.
        learner.observe("s1", "right", 0.0, "s2", ACTIONS, done=False)
        # A's greedy ("left") evaluated by B: target = 0.5 * 4.
        assert learner.q_a.value("s1", "right") == pytest.approx(2.0)

    def test_greedy_uses_mean_view(self):
        learner = DoubleQLearner()
        learner.q_a.set("s", "left", 10.0)
        learner.q_b.set("s", "left", 0.0)
        learner.q_a.set("s", "right", 4.0)
        learner.q_b.set("s", "right", 4.0)
        assert learner.greedy_action("s", ACTIONS) == "left"

    def test_discount_bounds(self):
        with pytest.raises(ValueError):
            DoubleQLearner(discount=1.0)


class TestMaximizationBias:
    """Sutton & Barto's two-state counterexample (ex. 6.7, simplified).

    From A, "right" terminates with 0; "left" goes to B, from which
    every action terminates with reward ~N(-0.1, 1).  The optimal
    choice at A is "right", but plain Q-learning's max over B's noisy
    values makes "left" look attractive; Double Q resists.
    """

    B_ACTIONS = [f"b{i}" for i in range(8)]

    def _run(self, learner, rng, episodes=300):
        for _ in range(episodes):
            learner.begin_episode()
            action, flag = learner.select_action("A", ACTIONS, rng)
            if action == "right":
                self._observe(learner, "A", action, 0.0, "T", [], True, rng,
                              flag)
                continue
            self._observe(learner, "A", action, 0.0, "B", self.B_ACTIONS,
                          False, rng, flag)
            b_action, b_flag = learner.select_action(
                "B", self.B_ACTIONS, rng
            )
            reward = float(rng.normal(-0.1, 1.0))
            self._observe(learner, "B", b_action, reward, "T", [], True, rng,
                          b_flag)

    @staticmethod
    def _observe(learner, state, action, reward, next_state, next_actions,
                 done, rng, exploratory):
        if isinstance(learner, DoubleQLearner):
            learner.observe(state, action, reward, next_state, next_actions,
                            done, rng=rng, exploratory=exploratory)
        else:
            learner.observe(state, action, reward, next_state,
                            next_actions or ["noop"], done,
                            exploratory=exploratory)

    def test_double_q_less_biased_than_q(self):
        double = DoubleQLearner(
            learning_rate=0.1, discount=0.99,
            policy=EpsilonGreedyPolicy(0.3),
        )
        plain = TDLambdaQLearner(
            learning_rate=0.1, discount=0.99, trace_decay=0.0,
            policy=EpsilonGreedyPolicy(0.3),
        )
        self._run(double, np.random.default_rng(7))
        self._run(plain, np.random.default_rng(7))
        # Plain Q overestimates the value of "left" at A relative to
        # Double Q (the bias), measured on the same episode stream.
        assert double.q.value("A", "left") < plain.q.value("A", "left")

    def test_double_q_learns_simple_chain(self, rng):
        learner = DoubleQLearner(
            learning_rate=0.3, discount=0.9, policy=EpsilonGreedyPolicy(0.3)
        )
        for _ in range(400):
            learner.begin_episode()
            state = "s1"
            for _ in range(20):
                action, _ = learner.select_action(state, ACTIONS, rng)
                if action == "right":
                    next_state = "s2" if state == "s1" else "goal"
                    done = next_state == "goal"
                    reward = 10.0 if done else 0.0
                else:
                    next_state, done, reward = state, False, 0.0
                learner.observe(state, action, reward, next_state, ACTIONS,
                                done, rng=rng)
                if done:
                    break
                state = next_state
        assert learner.greedy_action("s1", ACTIONS) == "right"
        assert learner.greedy_action("s2", ACTIONS) == "right"
