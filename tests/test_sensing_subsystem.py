"""Unit tests for the sensing subsystem."""

import pytest

from repro.core.adl import IDLE_STEP_ID
from repro.core.bus import EventBus
from repro.core.config import SensingConfig
from repro.core.events import SensorFrameEvent, StepEvent, ToolUsageEvent
from repro.sensing.subsystem import SensingSubsystem


@pytest.fixture
def subsystem(sim, tea_adl):
    bus = EventBus()
    sensing = SensingSubsystem(
        sim=sim, adl=tea_adl, bus=bus, config=SensingConfig()
    )
    usages, steps = [], []
    bus.subscribe(ToolUsageEvent, usages.append)
    bus.subscribe(StepEvent, steps.append)
    sensing.test_usages = usages
    sensing.test_steps = steps
    return sensing


class TestInjection:
    def test_usage_published_and_recorded(self, subsystem):
        subsystem.inject_usage(1)
        assert [u.tool_id for u in subsystem.test_usages] == [1]
        assert len(subsystem.history) == 1
        assert subsystem.current_step_id == 1

    def test_step_events_on_transition_only(self, subsystem):
        for tool in (1, 1, 2):
            subsystem.inject_usage(tool)
        assert [s.step_id for s in subsystem.test_steps] == [1, 2]
        assert len(subsystem.test_usages) == 3

    def test_foreign_tool_ignored(self, subsystem):
        subsystem.inject_usage(99)
        assert subsystem.test_usages == []
        assert subsystem.frames_ignored == 1
        assert len(subsystem.history) == 0


class TestFrames:
    def test_frame_handled_like_usage(self, sim, subsystem):
        subsystem.on_frame(SensorFrameEvent(time=0.0, node_uid=2, sequence=1))
        assert [u.tool_id for u in subsystem.test_usages] == [2]

    def test_foreign_frame_ignored(self, subsystem):
        subsystem.on_frame(SensorFrameEvent(time=0.0, node_uid=77, sequence=1))
        assert subsystem.frames_ignored == 1


class TestIdle:
    def test_idle_step_published_after_timeout(self, sim, subsystem):
        subsystem.inject_usage(1)
        sim.run_until(31.0)
        assert [s.step_id for s in subsystem.test_steps] == [1, IDLE_STEP_ID]

    def test_reset_episode(self, sim, subsystem):
        subsystem.inject_usage(1)
        subsystem.reset_episode()
        assert subsystem.current_step_id == IDLE_STEP_ID
        sim.run_until(100.0)
        # No idle event after reset (timer disarmed).
        assert [s.step_id for s in subsystem.test_steps] == [1]

    def test_history_survives_reset(self, subsystem):
        subsystem.inject_usage(1)
        subsystem.reset_episode()
        assert len(subsystem.history) == 1
