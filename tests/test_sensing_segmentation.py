"""Unit tests for episode segmentation and routine inference."""

import pytest

from repro.core.errors import RoutineError
from repro.sensing.history import UsageHistory
from repro.sensing.segmentation import infer_routine, segment_episodes


def history_from(points):
    history = UsageHistory()
    for time, tool in points:
        history.append(time, tool)
    return history


class TestSegmentation:
    def test_idle_gap_splits_episodes(self):
        history = history_from(
            [(0, 1), (5, 2), (10, 3), (15, 4),
             (100, 1), (105, 2), (110, 3), (115, 4)]
        )
        episodes = segment_episodes(history, idle_gap=30.0)
        assert episodes == [[1, 2, 3, 4], [1, 2, 3, 4]]

    def test_repeated_detections_collapse(self):
        history = history_from([(0, 1), (1, 1), (2, 1), (5, 2), (6, 2)])
        episodes = segment_episodes(history, idle_gap=30.0)
        assert episodes == [[1, 2]]

    def test_fragments_dropped(self):
        history = history_from([(0, 1), (100, 1), (105, 2), (110, 3)])
        episodes = segment_episodes(history, idle_gap=30.0, min_length=2)
        assert episodes == [[1, 2, 3]]

    def test_gap_exactly_at_threshold_does_not_split(self):
        history = history_from([(0, 1), (30, 2)])
        assert segment_episodes(history, idle_gap=30.0) == [[1, 2]]

    def test_empty_history(self):
        assert segment_episodes(UsageHistory()) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            segment_episodes(UsageHistory(), idle_gap=0.0)
        with pytest.raises(ValueError):
            segment_episodes(UsageHistory(), min_length=0)


class TestInferRoutine:
    def test_modal_complete_episode_wins(self, tea_adl):
        episodes = [[1, 2, 3, 4]] * 5 + [[1, 3, 2, 4]] * 2 + [[1, 3, 4]] * 4
        routine, support = infer_routine(tea_adl, episodes)
        assert list(routine.step_ids) == [1, 2, 3, 4]
        assert support == 5

    def test_incomplete_episodes_ignored(self, tea_adl):
        episodes = [[1, 3, 4]] * 10 + [[1, 3, 2, 4]]
        routine, support = infer_routine(tea_adl, episodes)
        assert list(routine.step_ids) == [1, 3, 2, 4]
        assert support == 1

    def test_no_complete_episode_raises(self, tea_adl):
        with pytest.raises(RoutineError):
            infer_routine(tea_adl, [[1, 2], [3, 4]])

    def test_episode_with_repeats_is_incomplete(self, tea_adl):
        # Visits four steps but repeats one -- not a valid routine.
        with pytest.raises(RoutineError):
            infer_routine(tea_adl, [[1, 2, 2, 4]])


class TestFieldTraining:
    """The watch-then-guide deployment flow, end to end."""

    def test_train_from_observed_history(self, tea_definition):
        from repro.adls.tea_making import POT, TEACUP
        from repro.core.config import CoReDAConfig
        from repro.core.system import CoReDA

        system = CoReDA.build(tea_definition, CoReDAConfig(seed=51))
        reliable = {POT.tool_id: 6.0, TEACUP.tool_id: 5.0}
        # Phase 1: watch 12 unaided episodes (idle time between them).
        for index in range(12):
            resident = system.create_resident(
                handling_overrides=reliable, name=f"watch-{index}"
            )
            system.observe_episode(resident)
            system.sim.run_until(system.sim.now + 120.0)
        # Phase 2: train from what was seen.
        result = system.train_from_history()
        assert list(result.routine.step_ids) == [1, 2, 3, 4]
        assert result.convergence[0.95] is not None
        # Phase 3: guide.
        resident = system.create_resident(
            handling_overrides=reliable, name="guided"
        )
        outcome = system.run_episode(resident)
        assert outcome.completed

    def test_train_from_history_learns_personal_routine(self, tea_definition):
        from repro.adls.tea_making import POT, TEACUP
        from repro.core.adl import Routine
        from repro.core.config import CoReDAConfig
        from repro.core.system import CoReDA

        system = CoReDA.build(tea_definition, CoReDAConfig(seed=52))
        personal = Routine(tea_definition.adl, [1, 3, 2, 4])
        reliable = {POT.tool_id: 6.0, TEACUP.tool_id: 5.0}
        for index in range(12):
            resident = system.create_resident(
                routine=personal, handling_overrides=reliable,
                name=f"watch-{index}",
            )
            system.observe_episode(resident)
            system.sim.run_until(system.sim.now + 120.0)
        result = system.train_from_history()
        assert list(result.routine.step_ids) == [1, 3, 2, 4]
        assert system.predictor.predict_next_tool(0, 1) == 3

    def test_empty_history_rejected(self, tea_definition):
        from repro.core.config import CoReDAConfig
        from repro.core.errors import CoReDAError
        from repro.core.system import CoReDA

        system = CoReDA.build(tea_definition, CoReDAConfig(seed=53))
        with pytest.raises(CoReDAError):
            system.train_from_history()
