"""Unit tests for the reminding subsystem and its parts."""

import pytest

from repro.adls.tea_making import POT, TEACUP
from repro.core.adl import ReminderLevel
from repro.core.bus import EventBus
from repro.core.config import RemindingConfig
from repro.core.events import (
    DisplayEvent,
    PraiseEvent,
    PromptRequestEvent,
    ReminderEvent,
    TriggerReason,
)
from repro.reminding.display import Display
from repro.reminding.escalation import EscalationPolicy
from repro.reminding.prompts import render_message, render_praise
from repro.reminding.subsystem import RemindingSubsystem


class TestPrompts:
    def test_minimal_message_short(self):
        message = render_message(ReminderLevel.MINIMAL, TEACUP, "Mr. Kim")
        assert message == "Please use tea-cup."

    def test_specific_message_personalized(self):
        message = render_message(ReminderLevel.SPECIFIC, TEACUP, "Mr. Kim")
        assert "Mr. Kim" in message
        assert "tea-cup" in message
        assert len(message) > len(
            render_message(ReminderLevel.MINIMAL, TEACUP, "Mr. Kim")
        )

    def test_praise_line(self):
        assert render_praise() == "Excellent!"


class TestDisplay:
    def test_show_records_and_publishes(self, sim):
        bus = EventBus()
        events = []
        bus.subscribe(DisplayEvent, events.append)
        display = Display(sim, bus=bus)
        display.show("hello", picture="pot.png")
        assert display.current.text == "hello"
        assert len(display) == 1
        assert events[0].picture == "pot.png"

    def test_current_none_before_first_show(self, sim):
        assert Display(sim).current is None


class TestEscalation:
    def test_first_attempts_keep_requested_level(self):
        policy = EscalationPolicy(RemindingConfig(escalate_after=2))
        first = policy.decide(1, ReminderLevel.MINIMAL)
        second = policy.decide(1, ReminderLevel.MINIMAL)
        assert first.level is ReminderLevel.MINIMAL
        assert second.level is ReminderLevel.MINIMAL

    def test_escalates_to_specific(self):
        policy = EscalationPolicy(RemindingConfig(escalate_after=2))
        policy.decide(1, ReminderLevel.MINIMAL)
        policy.decide(1, ReminderLevel.MINIMAL)
        third = policy.decide(1, ReminderLevel.MINIMAL)
        assert third.level is ReminderLevel.SPECIFIC

    def test_gives_up_after_cap(self):
        policy = EscalationPolicy(RemindingConfig(max_reminders_per_step=3))
        for _ in range(3):
            assert not policy.decide(1, ReminderLevel.MINIMAL).give_up
        assert policy.decide(1, ReminderLevel.MINIMAL).give_up

    def test_new_target_resets_attempts(self):
        policy = EscalationPolicy(RemindingConfig(escalate_after=1))
        policy.decide(1, ReminderLevel.MINIMAL)
        policy.decide(1, ReminderLevel.MINIMAL)
        fresh = policy.decide(2, ReminderLevel.MINIMAL)
        assert fresh.level is ReminderLevel.MINIMAL
        assert fresh.attempt == 1

    def test_explicit_reset(self):
        policy = EscalationPolicy(RemindingConfig())
        policy.decide(1, ReminderLevel.MINIMAL)
        policy.reset()
        assert policy.attempts == 0


@pytest.fixture
def subsystem(sim, tea_adl):
    bus = EventBus()
    display = Display(sim, bus=bus)
    reminding = RemindingSubsystem(
        sim=sim,
        adl=tea_adl,
        bus=bus,
        config=RemindingConfig(escalate_after=2, max_reminders_per_step=3),
        display=display,
        leds=None,
    )
    reminders = []
    bus.subscribe(ReminderEvent, reminders.append)
    return sim, bus, display, reminding, reminders


def prompt_request(sim, tool_id=2, level=ReminderLevel.MINIMAL,
                   reason=TriggerReason.STALL, wrong=None):
    return PromptRequestEvent(
        time=sim.now, tool_id=tool_id, level=level, reason=reason,
        wrong_tool_id=wrong,
    )


class TestRemindingSubsystem:
    def test_prompt_shown_on_display(self, subsystem):
        sim, bus, display, reminding, reminders = subsystem
        bus.publish(prompt_request(sim))
        assert "electronic-pot" in display.current.text
        assert display.current.picture == POT.picture

    def test_reminder_event_published(self, subsystem):
        sim, bus, display, reminding, reminders = subsystem
        bus.publish(prompt_request(sim, reason=TriggerReason.WRONG_TOOL, wrong=4))
        assert len(reminders) == 1
        assert reminders[0].wrong_tool_id == 4
        assert reminders[0].reason is TriggerReason.WRONG_TOOL

    def test_escalation_applied(self, subsystem):
        sim, bus, display, reminding, reminders = subsystem
        for _ in range(3):
            bus.publish(prompt_request(sim))
        assert [r.level for r in reminders] == [
            ReminderLevel.MINIMAL,
            ReminderLevel.MINIMAL,
            ReminderLevel.SPECIFIC,
        ]

    def test_gives_up_and_alerts_caregiver(self, subsystem):
        sim, bus, display, reminding, reminders = subsystem
        for _ in range(5):
            bus.publish(prompt_request(sim))
        assert len(reminders) == 3
        assert reminding.caregiver_alerts == 2

    def test_praise_shown_and_resets_escalation(self, subsystem):
        sim, bus, display, reminding, reminders = subsystem
        bus.publish(prompt_request(sim))
        bus.publish(PraiseEvent(time=sim.now, step_id=2, message="Excellent!"))
        assert display.current.text == "Excellent!"
        assert reminding.praises_rendered == 1
        assert reminding.escalation.attempts == 0

    def test_praise_disabled(self, sim, tea_adl):
        bus = EventBus()
        display = Display(sim, bus=bus)
        reminding = RemindingSubsystem(
            sim=sim,
            adl=tea_adl,
            bus=bus,
            config=RemindingConfig(praise_enabled=False),
            display=display,
        )
        bus.publish(PraiseEvent(time=sim.now, step_id=2, message="Excellent!"))
        assert reminding.praises_rendered == 0
        assert display.current is None
