"""Unit tests for convergence detection."""

import pytest

from repro.rl.convergence import ConvergenceDetector, convergence_iteration


class TestDetector:
    def test_converges_after_patience_run(self):
        detector = ConvergenceDetector(criterion=0.95, patience=3)
        results = [detector.update(a) for a in [0.5, 0.96, 0.97, 0.99]]
        assert results == [False, False, False, True]
        assert detector.converged_at == 2  # first iteration of the streak

    def test_dip_resets_streak(self):
        detector = ConvergenceDetector(criterion=0.95, patience=3)
        for accuracy in [0.96, 0.97, 0.4, 0.96, 0.96, 0.96]:
            detector.update(accuracy)
        assert detector.converged_at == 4

    def test_never_converges(self):
        detector = ConvergenceDetector(criterion=0.95, patience=2)
        for _ in range(50):
            detector.update(0.9)
        assert not detector.converged
        assert detector.converged_at is None

    def test_stays_converged_after_later_dip(self):
        detector = ConvergenceDetector(criterion=0.95, patience=2)
        for accuracy in [0.96, 0.97, 0.1]:
            detector.update(accuracy)
        assert detector.converged
        assert detector.converged_at == 1

    def test_boundary_value_counts(self):
        detector = ConvergenceDetector(criterion=0.95, patience=1)
        assert detector.update(0.95)

    def test_accuracy_bounds_enforced(self):
        detector = ConvergenceDetector()
        with pytest.raises(ValueError):
            detector.update(1.2)

    def test_history_recorded(self):
        detector = ConvergenceDetector()
        detector.update(0.3)
        detector.update(0.6)
        assert detector.history == [0.3, 0.6]

    @pytest.mark.parametrize("kwargs", [{"criterion": 0.0}, {"criterion": 1.2},
                                        {"patience": 0}])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ConvergenceDetector(**kwargs)


class TestOfflineHelper:
    def test_matches_streaming_detector(self):
        series = [0.2, 0.5, 0.96, 0.97, 0.99, 0.99]
        assert convergence_iteration(series, 0.95, patience=3) == 3

    def test_none_when_never_met(self):
        assert convergence_iteration([0.5] * 10, 0.95) is None

    def test_one_based_indexing(self):
        assert convergence_iteration([0.99], 0.95, patience=1) == 1
