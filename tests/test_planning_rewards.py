"""Unit tests for the CoReDA reward function."""

import pytest

from repro.core.adl import ReminderLevel
from repro.core.config import PlanningConfig
from repro.planning.action import PromptAction
from repro.planning.rewards_coreda import CoReDAReward
from repro.planning.state import PlanningState

TERMINAL = 4


@pytest.fixture
def reward():
    return CoReDAReward(PlanningConfig(), terminal_step_id=TERMINAL)


class TestPaperScheme:
    def test_terminal_completion_pays_1000(self, reward):
        state = PlanningState(2, 3)
        action = PromptAction(TERMINAL, ReminderLevel.MINIMAL)
        next_state = PlanningState(3, TERMINAL)
        assert reward(state, action, next_state) == 1000.0

    def test_terminal_pays_1000_regardless_of_level(self, reward):
        state = PlanningState(2, 3)
        next_state = PlanningState(3, TERMINAL)
        specific = PromptAction(TERMINAL, ReminderLevel.SPECIFIC)
        assert reward(state, specific, next_state) == 1000.0

    def test_intermediate_minimal_pays_100(self, reward):
        state = PlanningState(1, 2)
        action = PromptAction(3, ReminderLevel.MINIMAL)
        assert reward(state, action, PlanningState(2, 3)) == 100.0

    def test_intermediate_specific_pays_50(self, reward):
        state = PlanningState(1, 2)
        action = PromptAction(3, ReminderLevel.SPECIFIC)
        assert reward(state, action, PlanningState(2, 3)) == 50.0

    def test_unfollowed_prompt_pays_wrong_reward(self, reward):
        state = PlanningState(1, 2)
        action = PromptAction(1, ReminderLevel.MINIMAL)  # prompts tool 1
        assert reward(state, action, PlanningState(2, 3)) == 0.0

    def test_unfollowed_terminal_prompt_not_rewarded(self, reward):
        state = PlanningState(2, 3)
        action = PromptAction(1, ReminderLevel.MINIMAL)
        assert reward(state, action, PlanningState(3, TERMINAL)) == 0.0


class TestConfigurable:
    def test_custom_wrong_reward(self):
        config = PlanningConfig(wrong_prompt_reward=-10.0)
        reward = CoReDAReward(config, TERMINAL)
        action = PromptAction(1, ReminderLevel.MINIMAL)
        assert reward(PlanningState(1, 2), action, PlanningState(2, 3)) == -10.0

    def test_custom_reward_magnitudes(self):
        config = PlanningConfig(
            terminal_reward=500.0, minimal_reward=20.0, specific_reward=10.0
        )
        reward = CoReDAReward(config, TERMINAL)
        minimal = PromptAction(3, ReminderLevel.MINIMAL)
        assert reward(PlanningState(1, 2), minimal, PlanningState(2, 3)) == 20.0
