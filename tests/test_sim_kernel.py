"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import Signal, SimulationError, Simulator


@pytest.fixture(params=["heap", "calendar"])
def sim(request) -> Simulator:
    """Override the shared fixture: every kernel test runs on both
    backends (they promise identical semantics, so identical tests)."""
    return Simulator(backend=request.param)


class TestScheduling:
    def test_starts_at_time_zero(self, sim):
        assert sim.now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_schedule_fires_at_delay(self, sim):
        fired = []
        sim.schedule(2.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [2.5]

    def test_schedule_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(7.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [7.0]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_scheduling_into_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self, sim):
        order = []
        for label in "abcde":
            sim.schedule(1.0, lambda label=label: order.append(label))
        sim.run()
        assert order == list("abcde")

    def test_events_scheduled_during_run_fire(self, sim):
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_twice_is_noop(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.run() == 0

    def test_peek_skips_cancelled(self, sim):
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek() == 2.0


class TestRunUntil:
    def test_run_until_stops_at_horizon(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run_until(3.0)
        assert fired == [1]
        assert sim.now == 3.0

    def test_run_until_includes_boundary_event(self, sim):
        fired = []
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run_until(3.0)
        assert fired == [3]

    def test_run_until_backwards_rejected(self, sim):
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(2.0)

    def test_clock_advances_to_horizon_with_empty_queue(self, sim):
        sim.run_until(10.0)
        assert sim.now == 10.0

    def test_remaining_events_fire_later(self, sim):
        fired = []
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run_until(3.0)
        sim.run_until(6.0)
        assert fired == [5]


class TestRunGuards:
    def test_max_events_guard(self, sim):
        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        assert sim.run(max_events=10) == 10

    def test_events_processed_counter(self, sim):
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 4


class TestSignal:
    def test_fire_reaches_all_subscribers(self):
        signal = Signal("s")
        seen = []
        signal.subscribe(seen.append)
        signal.subscribe(seen.append)
        signal.fire("x")
        assert seen == ["x", "x"]

    def test_unsubscribe_stops_delivery(self):
        signal = Signal("s")
        seen = []
        unsubscribe = signal.subscribe(seen.append)
        unsubscribe()
        signal.fire("x")
        assert seen == []

    def test_unsubscribe_twice_is_noop(self):
        signal = Signal("s")
        unsubscribe = signal.subscribe(lambda _: None)
        unsubscribe()
        unsubscribe()

    def test_subscriber_added_during_fire_not_called(self):
        signal = Signal("s")
        seen = []

        def first(payload):
            seen.append("first")
            signal.subscribe(lambda p: seen.append("late"))

        signal.subscribe(first)
        signal.fire(None)
        assert seen == ["first"]

    def test_subscriber_removed_during_fire_not_called(self):
        # Regression: fire() used to iterate the live list, so a
        # subscriber unsubscribing its successor shifted the roster
        # under the loop -- the successor was skipped for the wrong
        # reason and a third subscriber could be missed entirely.
        signal = Signal("s")
        seen = []

        def second(payload):
            seen.append("second")

        def first(payload):
            seen.append("first")
            unsubscribe_second()

        signal.subscribe(first)
        unsubscribe_second = signal.subscribe(second)
        signal.subscribe(lambda p: seen.append("third"))
        signal.fire(None)
        assert seen == ["first", "third"]

    def test_self_unsubscribe_during_fire(self):
        signal = Signal("s")
        seen = []

        def once(payload):
            seen.append(payload)
            unsubscribe()

        unsubscribe = signal.subscribe(once)
        signal.fire("a")
        signal.fire("b")
        assert seen == ["a"]


class TestCancelledEventStress:
    """run_until's fused loop must discard cancelled heap runs lazily."""

    def test_dense_cancellations_fire_only_survivors(self, sim):
        fired = []
        events = [
            sim.schedule_at(t * 0.01, (lambda i=i: fired.append(i)))
            for i, t in enumerate(range(1000))
        ]
        # Cancel long alternating runs, including the heap head, so
        # the loop must skip many consecutive cancelled entries.
        for i, event in enumerate(events):
            if i % 3 != 0 or 100 <= i < 400:
                event.cancel()
        survivors = [
            i for i in range(1000) if i % 3 == 0 and not 100 <= i < 400
        ]
        count = sim.run_until(100.0)
        assert fired == survivors
        assert count == len(survivors)
        assert sim.events_processed == len(survivors)

    def test_cancel_during_run_until(self, sim):
        fired = []
        later = [
            sim.schedule_at(2.0 + i * 0.1, (lambda i=i: fired.append(i)))
            for i in range(50)
        ]

        def killer():
            for event in later[::2]:
                event.cancel()

        sim.schedule_at(1.0, killer)
        sim.run_until(10.0)
        assert fired == list(range(1, 50, 2))

    def test_horizon_boundary_with_cancelled_head(self, sim):
        fired = []
        head = sim.schedule_at(5.0, lambda: fired.append("head"))
        sim.schedule_at(5.0, lambda: fired.append("tail"))
        sim.schedule_at(6.0, lambda: fired.append("late"))
        head.cancel()
        assert sim.run_until(5.0) == 1
        assert fired == ["tail"]
        assert sim.now == 5.0
        # The 6.0 event is untouched and fires on the next segment.
        sim.run_until(6.0)
        assert fired == ["tail", "late"]

    def test_all_cancelled_advances_clock_only(self, sim):
        events = [sim.schedule_at(float(i), lambda: None) for i in range(20)]
        for event in events:
            event.cancel()
        assert sim.run_until(30.0) == 0
        assert sim.now == 30.0
        assert sim.peek() is None
