"""Unit tests for the 3-of-10 usage detector."""

import pytest

from repro.sensors.detector import KofNDetector


def detector(**kwargs):
    defaults = dict(threshold=1.0, k=3, n=10, refractory_samples=0)
    defaults.update(kwargs)
    return KofNDetector(**defaults)


class TestRule:
    def test_detects_on_kth_exceedance_in_window(self):
        det = detector()
        assert not det.observe(2.0)
        assert not det.observe(2.0)
        assert det.observe(2.0)

    def test_no_detection_below_threshold(self):
        det = detector()
        for _ in range(50):
            assert not det.observe(0.5)

    def test_threshold_is_strict(self):
        det = detector()
        for _ in range(30):
            assert not det.observe(1.0)  # equal is not "surpass"

    def test_exceedances_must_fit_one_window(self):
        det = detector()
        # Two bursts, then enough quiet samples to push them out of
        # the 10-sample window, then two more: never 3 in a window.
        samples = [2.0, 2.0] + [0.0] * 9 + [2.0, 2.0]
        assert det.observe_trace(samples) == 0

    def test_spread_exceedances_within_window_detect(self):
        det = detector()
        samples = [2.0, 0.0, 0.0, 2.0, 0.0, 0.0, 2.0]
        assert det.observe_trace(samples) == 1

    def test_window_cleared_after_detection(self):
        det = detector()
        det.observe_trace([2.0, 2.0, 2.0])
        assert det.exceedances_in_window == 0


class TestRefractory:
    def test_refractory_suppresses_redetection(self):
        det = detector(refractory_samples=5)
        assert det.observe_trace([2.0] * 8) == 1

    def test_detection_possible_after_refractory(self):
        det = detector(refractory_samples=2)
        # 3 bursts -> detect; 2 swallowed by refractory; 3 more -> detect.
        assert det.observe_trace([2.0] * 8) == 2

    def test_counters(self):
        det = detector(refractory_samples=0)
        det.observe_trace([2.0] * 6)
        assert det.detections == 2
        assert det.samples_seen == 6


class TestReset:
    def test_reset_clears_everything(self):
        det = detector(refractory_samples=10)
        det.observe_trace([2.0] * 3)
        det.reset()
        assert det.detections == 0
        assert det.samples_seen == 0
        assert det.observe_trace([2.0] * 3) == 1


class TestValidation:
    def test_k_bounds(self):
        with pytest.raises(ValueError):
            KofNDetector(threshold=1.0, k=0, n=10)
        with pytest.raises(ValueError):
            KofNDetector(threshold=1.0, k=11, n=10)

    def test_negative_refractory(self):
        with pytest.raises(ValueError):
            KofNDetector(threshold=1.0, refractory_samples=-1)

    def test_k_equals_one(self):
        det = detector(k=1)
        assert det.observe(2.0)


class TestObserveBlock:
    """observe_block must equal per-sample observe on any split."""

    def samples(self):
        import numpy as np

        rng = np.random.default_rng(3)
        raw = rng.random(200) * 2.5  # mixes sub- and super-threshold
        return raw.tolist()

    def test_matches_scalar_observe(self):
        samples = self.samples()
        block = detector(refractory_samples=7)
        scalar = detector(refractory_samples=7)
        hits = block.observe_block(samples)
        expected = [i for i, s in enumerate(samples) if scalar.observe(s)]
        assert hits == expected
        assert block.detections == scalar.detections
        assert block.samples_seen == scalar.samples_seen
        assert block.exceedances_in_window == scalar.exceedances_in_window

    def test_matches_across_any_chunking(self):
        samples = self.samples()
        scalar = detector(refractory_samples=5)
        expected = [i for i, s in enumerate(samples) if scalar.observe(s)]
        for size in (1, 3, 10, 64):
            det = detector(refractory_samples=5)
            hits = []
            for start in range(0, len(samples), size):
                chunk = samples[start:start + size]
                hits.extend(start + h for h in det.observe_block(chunk))
            assert hits == expected, f"chunk size {size}"

    def test_detection_exactly_at_block_boundary(self):
        # Two exceedances at the end of block 1; the third arrives as
        # the first sample of block 2 and must detect at index 0.
        det = detector()
        assert det.observe_block([0.0] * 8 + [2.0, 2.0]) == []
        assert det.observe_block([2.0] + [0.0] * 9) == [0]

    def test_refractory_spans_two_blocks(self):
        det = detector(refractory_samples=15)
        first = det.observe_block([2.0] * 10)
        assert first == [2]  # k=3: third vigorous sample detects
        # 7 refractory samples consumed after the detection in block
        # 1; 8 remain, so block 2's first 8 samples are swallowed and
        # the window only then refills: detection at 8 + 2 = index 10.
        second = det.observe_block([2.0] * 12)
        assert second == [10]

    def test_empty_block(self):
        det = detector()
        assert det.observe_block([]) == []
        assert det.samples_seen == 0


class TestSnapshotRestore:
    def test_roundtrip_replays_identically(self):
        det = detector(refractory_samples=6)
        det.observe_block([2.0, 0.0, 2.0])
        state = det.snapshot()
        tail = [2.0, 2.0, 0.0, 2.0, 2.0, 2.0, 0.0]
        first = det.observe_block(tail)
        first_state = (det.detections, det.samples_seen,
                       det.exceedances_in_window)
        det.restore(state)
        second = det.observe_block(tail)
        assert second == first
        assert (det.detections, det.samples_seen,
                det.exceedances_in_window) == first_state

    def test_restore_recovers_threshold(self):
        det = detector()
        state = det.snapshot()
        det.threshold = 99.0
        det.restore(state)
        assert det.threshold == 1.0


class TestRunningWindowCounter:
    def test_counter_tracks_evictions(self):
        det = detector(n=4, k=4)  # k=n so nothing detects here
        for sample in [2.0, 2.0, 0.0, 2.0]:
            det.observe(sample)
        assert det.exceedances_in_window == 3
        det.observe(0.0)  # evicts the first 2.0
        assert det.exceedances_in_window == 2
        det.observe(0.0)  # evicts the second 2.0
        assert det.exceedances_in_window == 1

    def test_counter_zero_after_detection_clears_window(self):
        det = detector()
        det.observe(2.0)
        det.observe(2.0)
        assert det.exceedances_in_window == 2
        assert det.observe(2.0)
        assert det.exceedances_in_window == 0
