"""Unit tests for the 3-of-10 usage detector."""

import pytest

from repro.sensors.detector import KofNDetector


def detector(**kwargs):
    defaults = dict(threshold=1.0, k=3, n=10, refractory_samples=0)
    defaults.update(kwargs)
    return KofNDetector(**defaults)


class TestRule:
    def test_detects_on_kth_exceedance_in_window(self):
        det = detector()
        assert not det.observe(2.0)
        assert not det.observe(2.0)
        assert det.observe(2.0)

    def test_no_detection_below_threshold(self):
        det = detector()
        for _ in range(50):
            assert not det.observe(0.5)

    def test_threshold_is_strict(self):
        det = detector()
        for _ in range(30):
            assert not det.observe(1.0)  # equal is not "surpass"

    def test_exceedances_must_fit_one_window(self):
        det = detector()
        # Two bursts, then enough quiet samples to push them out of
        # the 10-sample window, then two more: never 3 in a window.
        samples = [2.0, 2.0] + [0.0] * 9 + [2.0, 2.0]
        assert det.observe_trace(samples) == 0

    def test_spread_exceedances_within_window_detect(self):
        det = detector()
        samples = [2.0, 0.0, 0.0, 2.0, 0.0, 0.0, 2.0]
        assert det.observe_trace(samples) == 1

    def test_window_cleared_after_detection(self):
        det = detector()
        det.observe_trace([2.0, 2.0, 2.0])
        assert det.exceedances_in_window == 0


class TestRefractory:
    def test_refractory_suppresses_redetection(self):
        det = detector(refractory_samples=5)
        assert det.observe_trace([2.0] * 8) == 1

    def test_detection_possible_after_refractory(self):
        det = detector(refractory_samples=2)
        # 3 bursts -> detect; 2 swallowed by refractory; 3 more -> detect.
        assert det.observe_trace([2.0] * 8) == 2

    def test_counters(self):
        det = detector(refractory_samples=0)
        det.observe_trace([2.0] * 6)
        assert det.detections == 2
        assert det.samples_seen == 6


class TestReset:
    def test_reset_clears_everything(self):
        det = detector(refractory_samples=10)
        det.observe_trace([2.0] * 3)
        det.reset()
        assert det.detections == 0
        assert det.samples_seen == 0
        assert det.observe_trace([2.0] * 3) == 1


class TestValidation:
    def test_k_bounds(self):
        with pytest.raises(ValueError):
            KofNDetector(threshold=1.0, k=0, n=10)
        with pytest.raises(ValueError):
            KofNDetector(threshold=1.0, k=11, n=10)

    def test_negative_refractory(self):
        with pytest.raises(ValueError):
            KofNDetector(threshold=1.0, refractory_samples=-1)

    def test_k_equals_one(self):
        det = detector(k=1)
        assert det.observe(2.0)
