"""Unit tests for the PAVENET node model."""

import numpy as np
import pytest

from repro.core.adl import SensorType, Tool
from repro.core.config import RadioConfig, SensingConfig
from repro.sensors.pavenet import Led, PavenetNode
from repro.sensors.radio import BASE_STATION_UID, Frame, RadioMedium
from repro.sensors.signals import SignalProfile, SignalSource


@pytest.fixture
def setup(sim):
    radio = RadioMedium(
        sim, RadioConfig(loss_probability=0.0), np.random.default_rng(0)
    )
    tool = Tool(7, "cup", SensorType.ACCELEROMETER)
    source = SignalSource(
        SignalProfile(burst_probability=0.9), np.random.default_rng(1)
    )
    node = PavenetNode(
        sim=sim, tool=tool, source=source, radio=radio, config=SensingConfig()
    )
    received = []
    radio.attach(BASE_STATION_UID, received.append)
    return node, source, radio, received


class TestFirmwareLoop:
    def test_idle_node_sends_nothing(self, sim, setup):
        node, _, _, received = setup
        node.start()
        sim.run_until(60.0)
        assert received == []

    def test_usage_detected_and_reported(self, sim, setup):
        node, source, _, received = setup
        node.start()
        source.begin_use(0.0, duration=5.0)
        sim.run_until(6.0)
        assert len(received) >= 1
        assert received[0].src_uid == 7
        assert received[0].kind == "usage"

    def test_refractory_limits_report_rate(self, sim, setup):
        node, source, _, received = setup
        node.start()
        source.begin_use(0.0, duration=10.0)
        sim.run_until(10.0)
        # 10 s of continuous vigorous use with a 2 s refractory can
        # produce at most ~5 reports.
        assert 1 <= len(received) <= 6

    def test_detection_logged_to_eeprom(self, sim, setup):
        node, source, _, _ = setup
        node.start()
        source.begin_use(0.0, duration=5.0)
        sim.run_until(6.0)
        assert len(node.eeprom) == node.usage_reports >= 1

    def test_stop_halts_sampling(self, sim, setup):
        node, source, _, received = setup
        node.start()
        node.stop()
        source.begin_use(sim.now, duration=5.0)
        sim.run_until(10.0)
        assert received == []
        assert not node.running

    def test_start_is_idempotent(self, sim, setup):
        node, _, _, _ = setup
        node.start()
        node.start()
        sim.run_until(1.0)
        # One firmware: at most two blocks pre-drawn by t=1.0 (the
        # block sampler draws eagerly, so the counter runs one block
        # ahead of the clock).  A duplicate firmware would double it.
        assert node.detector.samples_seen <= 21


class TestLedCommands:
    def test_led_frame_blinks(self, sim, setup):
        node, _, radio, _ = setup
        radio.transmit(
            Frame(
                src_uid=BASE_STATION_UID,
                dst_uid=7,
                kind="led",
                sequence=1,
                payload={"color": "green", "blinks": 3},
            )
        )
        sim.run()
        assert node.leds["green"].total_blinks == 3

    def test_unknown_color_ignored(self, sim, setup):
        node, _, radio, _ = setup
        radio.transmit(
            Frame(
                src_uid=BASE_STATION_UID,
                dst_uid=7,
                kind="led",
                sequence=1,
                payload={"color": "purple", "blinks": 3},
            )
        )
        sim.run()
        assert all(led.total_blinks == 0 for led in node.leds.values())

    def test_non_led_frame_ignored(self, sim, setup):
        node, _, radio, _ = setup
        radio.transmit(
            Frame(src_uid=BASE_STATION_UID, dst_uid=7, kind="usage", sequence=1)
        )
        sim.run()
        assert all(led.total_blinks == 0 for led in node.leds.values())


class TestLed:
    def test_blink_history(self):
        led = Led("red")
        led.blink(1.0, 3)
        led.blink(2.0, 8)
        assert led.total_blinks == 11
        assert [r.time for r in led.history] == [1.0, 2.0]

    def test_zero_blinks_rejected(self):
        with pytest.raises(ValueError):
            Led("red").blink(1.0, 0)


class TestIdentity:
    def test_uid_is_tool_id(self, setup):
        node, _, _, _ = setup
        assert node.uid == node.tool.tool_id == 7

    def test_four_leds(self, setup):
        node, _, _, _ = setup
        assert set(node.leds) == {"green", "red", "yellow", "orange"}
