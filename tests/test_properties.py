"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bus import EventBus
from repro.core.metrics import rolling_mean, wilson_interval
from repro.rl.convergence import ConvergenceDetector, convergence_iteration
from repro.rl.qtable import QTable
from repro.rl.schedules import ExponentialDecay, HarmonicDecay, LinearDecay
from repro.rl.traces import EligibilityTraces, TraceKind
from repro.sensing.history import UsageHistory
from repro.sensors.detector import KofNDetector
from repro.sensors.eeprom import RECORD_SIZE, EepromLog, EepromRecord
from repro.sim.kernel import Simulator


# ---------------------------------------------------------------------------
# kernel

@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                max_size=50))
def test_kernel_fires_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1,
             max_size=30),
    st.floats(min_value=0.0, max_value=120.0),
)
def test_kernel_run_until_never_overshoots(delays, horizon):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda: fired.append(sim.now))
    sim.run_until(horizon)
    assert sim.now == horizon
    assert all(t <= horizon for t in fired)


# ---------------------------------------------------------------------------
# Q-table

@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=0, max_value=5),
            st.floats(min_value=-1e6, max_value=1e6),
        ),
        min_size=1,
        max_size=100,
    )
)
def test_qtable_best_action_is_maximal(writes):
    q = QTable()
    for state, action, value in writes:
        q.set(state, action, value)
    actions = list(range(6))
    for state in range(6):
        best = q.best_action(state, actions)
        assert q.value(state, best) == max(q.value(state, a) for a in actions)


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3),
                  st.floats(-100, 100)),
        max_size=50,
    )
)
def test_qtable_copy_equivalence_and_independence(writes):
    q = QTable(initial_value=1.5)
    for state, action, value in writes:
        q.set(state, action, value)
    clone = q.copy()
    assert q.max_abs_difference(clone) == 0.0
    clone.add(0, 0, 123.0)
    assert q.max_abs_difference(clone) > 0.0


# ---------------------------------------------------------------------------
# traces

@given(
    st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)), min_size=1,
             max_size=50),
    st.floats(min_value=0.0, max_value=0.99),
)
def test_traces_bounded_for_replacing_kind(visits, decay):
    traces = EligibilityTraces(TraceKind.REPLACING)
    for state, action in visits:
        traces.visit(state, action)
        traces.decay(decay)
    assert all(0.0 <= value <= 1.0 for _, value in traces.items())


@given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=50))
def test_traces_reset_always_empties(visits):
    traces = EligibilityTraces(TraceKind.ACCUMULATING)
    for state, action in visits:
        traces.visit(state, action)
    traces.reset()
    assert len(traces) == 0


# ---------------------------------------------------------------------------
# schedules

@given(st.integers(min_value=0, max_value=1000),
       st.integers(min_value=0, max_value=1000))
def test_exponential_decay_is_monotone(a, b):
    schedule = ExponentialDecay(1.0, 0.95, minimum=0.01)
    early, late = sorted([a, b])
    assert schedule.value(early) >= schedule.value(late) >= 0.01


@given(st.integers(min_value=0, max_value=10_000))
def test_harmonic_decay_positive_and_bounded(step):
    schedule = HarmonicDecay(0.5, half_life=7.0)
    assert 0.0 < schedule.value(step) <= 0.5


@given(st.integers(min_value=0, max_value=10_000))
def test_linear_decay_stays_in_range(step):
    schedule = LinearDecay(0.9, 0.1, span=100)
    assert 0.1 <= schedule.value(step) <= 0.9


# ---------------------------------------------------------------------------
# convergence

@given(st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=200),
       st.floats(min_value=0.01, max_value=1.0),
       st.integers(min_value=1, max_value=5))
def test_streaming_and_offline_convergence_agree(series, criterion, patience):
    detector = ConvergenceDetector(criterion=criterion, patience=patience)
    for accuracy in series:
        detector.update(accuracy)
    assert detector.converged_at == convergence_iteration(
        series, criterion, patience
    )


@given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1,
                max_size=200))
def test_convergence_iteration_points_at_qualifying_run(series):
    iteration = convergence_iteration(series, 0.9, patience=2)
    if iteration is not None:
        window = series[iteration - 1 : iteration + 1]
        assert len(window) == 2
        assert all(value >= 0.9 for value in window)


# ---------------------------------------------------------------------------
# detector

@given(
    st.lists(st.floats(min_value=0.0, max_value=10.0), max_size=300),
    st.integers(min_value=1, max_value=5),
)
def test_detector_never_fires_without_k_exceedances(samples, k):
    detector = KofNDetector(threshold=2.0, k=k, n=10, refractory_samples=0)
    exceedances = sum(1 for s in samples if s > 2.0)
    detections = detector.observe_trace(samples)
    assert detections * k <= max(exceedances, 0)
    if exceedances < k:
        assert detections == 0


@given(st.lists(st.floats(min_value=0.0, max_value=1.9), max_size=500))
def test_detector_silent_below_threshold(samples):
    detector = KofNDetector(threshold=2.0, k=3, n=10)
    assert detector.observe_trace(samples) == 0


# ---------------------------------------------------------------------------
# history

@given(
    st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=1e4),
                  st.integers(min_value=1, max_value=6)),
        max_size=100,
    )
)
def test_history_step_sequence_has_no_adjacent_duplicates(entries):
    history = UsageHistory()
    for time, tool in sorted(entries, key=lambda e: e[0]):
        history.append(time, tool)
    sequence = history.step_sequence()
    assert all(a != b for a, b in zip(sequence, sequence[1:]))


@given(
    st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=1e4),
                  st.integers(min_value=1, max_value=6)),
        max_size=60,
    )
)
def test_history_dwell_stats_are_finite_and_positive(entries):
    history = UsageHistory()
    for time, tool in sorted(entries, key=lambda e: e[0]):
        history.append(time, tool)
    for stats in history.dwell_stats().values():
        assert stats.count >= 1
        assert stats.mean >= 0.0
        assert math.isfinite(stats.sd)


# ---------------------------------------------------------------------------
# eeprom

@given(st.integers(min_value=1, max_value=30),
       st.integers(min_value=0, max_value=100))
def test_eeprom_never_exceeds_capacity(capacity_records, writes):
    log = EepromLog(capacity_bytes=capacity_records * RECORD_SIZE)
    for seq in range(writes):
        log.append(EepromRecord(timestamp=float(seq), node_uid=1, sequence=seq))
    assert len(log) <= capacity_records
    assert len(log) == min(writes, capacity_records)
    assert log.overwrites == max(0, writes - capacity_records)
    # The retained records are always the most recent ones, in order.
    kept = [r.sequence for r in log.records()]
    assert kept == list(range(max(0, writes - capacity_records), writes))


# ---------------------------------------------------------------------------
# metrics

@given(st.integers(min_value=0, max_value=500),
       st.integers(min_value=1, max_value=500))
def test_wilson_interval_brackets_the_point_estimate(successes, extra):
    trials = successes + extra
    low, high = wilson_interval(successes, trials)
    assert 0.0 <= low <= successes / trials <= high <= 1.0


@given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1,
                max_size=100),
       st.integers(min_value=1, max_value=20))
def test_rolling_mean_bounded_by_series_extremes(values, window):
    smoothed = rolling_mean(values, window)
    assert len(smoothed) == len(values)
    assert all(min(values) - 1e-9 <= s <= max(values) + 1e-9 for s in smoothed)


# ---------------------------------------------------------------------------
# bus

@given(st.lists(st.integers(), max_size=50))
@settings(max_examples=25)
def test_bus_delivers_everything_in_order(payloads):
    class Event:
        def __init__(self, value):
            self.value = value

    bus = EventBus()
    seen = []
    bus.subscribe(Event, lambda e: seen.append(e.value))
    for value in payloads:
        bus.publish(Event(value))
    assert seen == payloads


# ---------------------------------------------------------------------------
# persistence roundtrips

@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),   # previous
            st.integers(min_value=1, max_value=4),   # current
            st.integers(min_value=1, max_value=4),   # prompted tool
            st.booleans(),                           # minimal?
            st.floats(min_value=-1e6, max_value=1e6),
        ),
        max_size=40,
    )
)
@settings(max_examples=30)
def test_policy_store_roundtrip_is_lossless(entries):
    import pathlib
    import tempfile

    from repro.adls.tea_making import make_tea_making
    from repro.core.adl import ReminderLevel
    from repro.planning.action import PromptAction, action_space
    from repro.planning.predictor import NextStepPredictor
    from repro.planning.state import PlanningState
    from repro.planning.store import load_predictor, save_predictor
    from repro.rl.qtable import QTable

    adl = make_tea_making()
    q = QTable(initial_value=1000.0)
    for previous, current, tool, minimal, value in entries:
        if previous == current:
            continue
        level = ReminderLevel.MINIMAL if minimal else ReminderLevel.SPECIFIC
        q.set(PlanningState(previous, current), PromptAction(tool, level), value)
    predictor = NextStepPredictor(q, action_space(adl), converged=True)
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "policy.json"
        save_predictor(predictor, path, adl.name)
        restored = load_predictor(path, adl)
    assert restored.q.max_abs_difference(q) < 1e-9


@given(
    st.integers(min_value=0, max_value=10_000),
    st.floats(min_value=5.0, max_value=600.0),
    st.integers(min_value=1, max_value=10),
)
@settings(max_examples=30)
def test_config_io_roundtrip(seed, stall_timeout, escalate_after):
    import json
    from dataclasses import replace

    from repro.core.config import CoReDAConfig, RemindingConfig
    from repro.core.config_io import config_from_dict, config_to_dict

    config = replace(
        CoReDAConfig(seed=seed),
        reminding=RemindingConfig(
            stall_timeout=stall_timeout, escalate_after=escalate_after
        ),
    )
    document = json.loads(json.dumps(config_to_dict(config)))
    assert config_from_dict(document) == config
