"""Unit tests for batched greedy-policy inference (repro.rl.batch)."""

import numpy as np
import pytest

from repro.core.adl import ReminderLevel
from repro.planning.action import PromptAction
from repro.rl.batch import (
    GreedyPolicyTable,
    MemoizedGreedyPolicy,
    ShardPredictor,
    greedy_policy_for,
)
from repro.rl.dense import _VECTOR_MIN_ELEMENTS, DenseQTable
from repro.rl.double_q import DoubleQLearner
from repro.rl.expected_sarsa import ExpectedSarsaLearner
from repro.rl.qtable import QTable
from repro.rl.sarsa import SarsaLambdaLearner
from repro.rl.tdlambda import TDLambdaQLearner

ACTIONS = ("alpha", "bravo", "charlie", "delta")


def random_dense(rng, n_states=40, initial=0.5):
    q = DenseQTable(initial)
    for s in range(n_states):
        for a in ACTIONS:
            q.set(s, a, float(rng.integers(0, 5)))
    return q


class TestGreedyPolicyTable:
    def test_matches_best_action_on_seen_states(self):
        rng = np.random.default_rng(7)
        q = random_dense(rng)
        policy = GreedyPolicyTable(q, ACTIONS)
        for s in range(40):
            assert policy.lookup(s) == q.best_action(s, ACTIONS)

    def test_unseen_state_matches_best_action(self):
        q = DenseQTable(1.0)
        q.set(0, "alpha", 2.0)
        policy = GreedyPolicyTable(q, ACTIONS)
        # "never-interned" must answer what best_action computes for
        # an all-initial row -- without interning the state.
        assert policy.lookup("ghost") == q.best_action("ghost2", ACTIONS)
        assert "ghost" not in q.index._state_ids

    def test_ties_break_in_repr_order(self):
        q = DenseQTable(0.0)
        q.set(0, "charlie", 3.0)
        q.set(0, "bravo", 3.0)
        policy = GreedyPolicyTable(q, ACTIONS)
        assert policy.lookup(0) == q.best_action(0, ACTIONS) == "bravo"

    def test_invalidated_by_writes(self):
        q = DenseQTable(0.0)
        q.set(0, "alpha", 1.0)
        policy = GreedyPolicyTable(q, ACTIONS)
        assert policy.lookup(0) == "alpha"
        q.set(0, "delta", 9.0)
        assert policy.lookup(0) == "delta"
        q.add(0, "alpha", 10.0)
        assert policy.lookup(0) == "alpha"

    def test_invalidated_by_growth_writes(self):
        q = DenseQTable(0.0)
        q.set(0, "alpha", 1.0)
        policy = GreedyPolicyTable(q, ACTIONS)
        policy.lookup(0)
        # Intern far more states than the initial capacity holds.
        for s in range(1, 300):
            q.set(s, ACTIONS[s % 4], float(s))
        for s in range(300):
            assert policy.lookup(s) == q.best_action(s, ACTIONS)

    def test_empty_action_space_rejected(self):
        with pytest.raises(ValueError):
            GreedyPolicyTable(DenseQTable(0.0), [])


class TestMemoizedGreedyPolicy:
    def test_matches_best_action(self):
        q = QTable(0.0)
        q.set((0, 1), "bravo", 4.0)
        q.set((1, 2), "delta", 2.0)
        policy = MemoizedGreedyPolicy(q, ACTIONS)
        for state in ((0, 1), (1, 2), (9, 9)):
            assert policy.lookup(state) == q.best_action(state, ACTIONS)

    def test_memo_cleared_on_write(self):
        q = QTable(0.0)
        q.set("s", "alpha", 1.0)
        policy = MemoizedGreedyPolicy(q, ACTIONS)
        assert policy.lookup("s") == "alpha"
        q.add("s", "charlie", 5.0)
        assert policy.lookup("s") == "charlie"

    def test_empty_action_space_rejected(self):
        with pytest.raises(ValueError):
            MemoizedGreedyPolicy(QTable(0.0), [])


class TestGreedyPolicyFor:
    def test_dense_gets_full_table(self):
        assert isinstance(
            greedy_policy_for(DenseQTable(0.0), ACTIONS), GreedyPolicyTable
        )

    def test_sparse_gets_memo(self):
        assert isinstance(
            greedy_policy_for(QTable(0.0), ACTIONS), MemoizedGreedyPolicy
        )

    def test_double_q_mean_view_gets_memo(self):
        learner = DoubleQLearner()
        policy = greedy_policy_for(learner.q, ACTIONS)
        assert isinstance(policy, MemoizedGreedyPolicy)
        # Writes to either underlying table invalidate the memo.
        assert policy.lookup("s") == learner.q.best_action("s", ACTIONS)
        learner.q_b.set("s", "delta", 99.0)
        assert policy.lookup("s") == learner.q.best_action("s", ACTIONS)

    def test_unknown_table_type_uncacheable(self):
        class Opaque:
            def best_action(self, state, actions):  # pragma: no cover
                return actions[0]

        assert greedy_policy_for(Opaque(), ACTIONS) is None


class TestLearnerWritesBumpVersion:
    """Every learner write path must move the version counter.

    The memoized policies revalidate against it; a fused fast path
    that writes the flat buffer without bumping it would serve stale
    prompts under online adaptation.
    """

    def run_learner(self, learner):
        before = learner.q.version
        rng = np.random.default_rng(0)
        actions = list(ACTIONS)
        state, nxt = (0, 1), (1, 2)
        for done in (False, True):
            action, exploratory = learner.select_action(
                state, actions, rng
            )
            learner.observe(
                state, action, 1.0, nxt, actions, done,
                exploratory=exploratory,
            )
        assert learner.q.version > before

    def test_tdlambda(self):
        self.run_learner(TDLambdaQLearner())

    def test_sarsa(self):
        learner = SarsaLambdaLearner()
        before = learner.q.version
        learner.observe((0, 1), "alpha", 1.0, (1, 2), "bravo", False)
        learner.observe((1, 2), "bravo", 1.0, (2, 3), None, True)
        assert learner.q.version > before

    def test_expected_sarsa(self):
        self.run_learner(ExpectedSarsaLearner())

    def test_dyna(self):
        from repro.rl.dyna import DynaQLearner

        learner = DynaQLearner(planning_steps=3)
        before = learner.q.version
        rng = np.random.default_rng(0)
        actions = list(ACTIONS)
        learner.observe(
            (0, 1), "alpha", 1.0, (1, 2), actions, False, rng=rng
        )
        assert learner.q.version > before

    def test_double_q(self):
        learner = DoubleQLearner()
        before = learner.q.version
        learner.observe((0, 1), "alpha", 1.0, (1, 2), list(ACTIONS), False)
        assert learner.q.version > before


class _StubPredictor:
    def __init__(self, q, actions):
        self.q = q
        self.actions = tuple(actions)
        self.converged = True


class TestShardPredictor:
    def prompt_actions(self):
        return tuple(
            PromptAction(tool, level)
            for tool in (1, 2, 3)
            for level in (ReminderLevel.MINIMAL, ReminderLevel.SPECIFIC)
        )

    def test_matches_wrapped_predictor(self):
        actions = self.prompt_actions()
        rng = np.random.default_rng(3)
        q = DenseQTable(0.0)
        for prev in range(4):
            for cur in range(4):
                for action in actions:
                    q.set((prev, cur), action, float(rng.integers(0, 4)))
        shard = ShardPredictor(_StubPredictor(q, actions)).precompute()
        for prev in range(5):
            for cur in range(5):
                assert shard.predict((prev, cur)) == q.best_action(
                    (prev, cur), actions
                )
                assert (
                    shard.predict_next_tool(prev, cur)
                    == q.best_action((prev, cur), actions).tool_id
                )

    def test_exposes_wrapped_metadata(self):
        actions = self.prompt_actions()
        inner = _StubPredictor(DenseQTable(0.0), actions)
        shard = ShardPredictor(inner)
        assert shard.inner is inner
        assert shard.converged
        assert shard.actions == actions

    def test_uncacheable_table_rejected(self):
        class Opaque:
            pass

        stub = _StubPredictor(Opaque(), self.prompt_actions())
        with pytest.raises(TypeError):
            ShardPredictor(stub)


class TestArgmaxProberVectorPath:
    def test_vector_and_scalar_paths_agree(self):
        rng = np.random.default_rng(11)
        n_states = _VECTOR_MIN_ELEMENTS // len(ACTIONS) + 1
        q = DenseQTable(0.0)
        states = list(range(n_states))
        for s in states:
            for a in ACTIONS:
                q.set(s, a, float(rng.integers(0, 6)))
        big = q.argmax_prober(states, ACTIONS)
        small = q.argmax_prober(states[:10], ACTIONS)
        assert big._vector
        assert not small._vector
        expected = [q.best_action(s, ACTIONS) for s in states]
        assert big() == expected
        assert small() == expected[:10]

    def test_vector_path_tracks_writes(self):
        q = DenseQTable(0.0)
        n_states = _VECTOR_MIN_ELEMENTS // len(ACTIONS) + 1
        states = list(range(n_states))
        for s in states:
            q.set(s, "alpha", 1.0)
        prober = q.argmax_prober(states, ACTIONS)
        assert prober._vector
        assert prober() == ["alpha"] * n_states
        q.set(5, "delta", 7.0)
        assert prober()[5] == "delta"
