"""Batched HMM inference: ULP-identity with the scalar reference."""

import numpy as np
import pytest

from repro.recognition import ActivityRecognizer, BatchedHMM, DiscreteHMM
from repro.recognition.hmm import _logsumexp, _logsumexp_matrix


def random_model(rng, n_states, n_symbols):
    prior = rng.dirichlet(np.ones(n_states))
    transition = rng.dirichlet(np.ones(n_states), size=n_states)
    emission = rng.dirichlet(np.ones(n_symbols), size=n_states)
    return DiscreteHMM(prior, transition, emission)


@pytest.fixture
def model_stack():
    rng = np.random.default_rng(42)
    n_symbols = 6
    models = [
        random_model(rng, n_states, n_symbols)
        for n_states in (2, 5, 9, 3, 7)
    ]
    return models, n_symbols


class TestBatchedForward:
    def test_single_stream_ulp_identical(self, model_stack):
        models, n_symbols = model_stack
        rng = np.random.default_rng(1)
        batched = BatchedHMM(models)
        for length in (1, 2, 7, 33):
            stream = rng.integers(0, n_symbols, size=length).tolist()
            got = batched.log_likelihoods(stream)
            reference = [m.log_likelihood(stream) for m in models]
            assert got.tolist() == reference

    def test_matrix_ulp_identical_mixed_lengths(self, model_stack):
        models, n_symbols = model_stack
        rng = np.random.default_rng(2)
        batched = BatchedHMM(models)
        streams = [
            rng.integers(0, n_symbols, size=length).tolist()
            for length in (11, 1, 0, 27, 4, 11, 2)
        ]
        matrix = batched.log_likelihood_matrix(streams)
        reference = [
            [m.log_likelihood(s) for m in models] for s in streams
        ]
        assert matrix.tolist() == reference

    def test_boundary_symbol_accepted(self, model_stack):
        models, n_symbols = model_stack
        batched = BatchedHMM(models)
        stream = [n_symbols - 1, 0, n_symbols - 1]
        assert batched.log_likelihoods(stream).tolist() == [
            m.log_likelihood(stream) for m in models
        ]

    def test_empty_stream_is_zeros(self, model_stack):
        models, _ = model_stack
        batched = BatchedHMM(models)
        assert batched.log_likelihoods([]).tolist() == [0.0] * len(models)
        assert batched.log_likelihood_matrix([]).shape == (0, len(models))

    def test_out_of_range_symbol_rejected(self, model_stack):
        models, n_symbols = model_stack
        batched = BatchedHMM(models)
        with pytest.raises(ValueError, match=f"observation {n_symbols} "):
            batched.log_likelihoods([0, n_symbols])
        with pytest.raises(ValueError, match="observation -1 "):
            batched.log_likelihood_matrix([[0], [-1]])

    def test_empty_stack_rejected(self):
        with pytest.raises(ValueError):
            BatchedHMM([])

    def test_mismatched_alphabets_rejected(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            BatchedHMM(
                [random_model(rng, 3, 4), random_model(rng, 3, 5)]
            )


class TestHMMNumericalEdges:
    def test_all_neginf_column_through_logsumexp_matrix(self):
        matrix = np.array(
            [[0.0, -np.inf], [-1.0, -np.inf]]
        )
        with np.errstate(divide="ignore"):
            out = _logsumexp_matrix(matrix)
        assert out[0] == pytest.approx(np.log(1 + np.e) - 1.0)
        assert np.isneginf(out[1])

    def test_logsumexp_all_neginf(self):
        assert np.isneginf(_logsumexp(np.array([-np.inf, -np.inf])))

    def test_scalar_empty_sequence_contracts(self):
        rng = np.random.default_rng(4)
        model = random_model(rng, 3, 4)
        assert model.log_likelihood([]) == 0.0
        assert model.viterbi([]) == ([], 0.0)
        # filter([]) falls back to the (normalized) prior.
        assert model.filter([]).sum() == pytest.approx(1.0)

    def test_scalar_boundary_and_negative_symbols(self):
        rng = np.random.default_rng(5)
        model = random_model(rng, 3, 4)
        model.log_likelihood([3, 0, 3])
        with pytest.raises(ValueError, match="observation 4 "):
            model.log_likelihood([0, 4])
        with pytest.raises(ValueError, match="observation -2 "):
            model.viterbi([0, -2])


class TestRecognizerBackends:
    def streams(self, registry):
        streams = [[], [999]]
        for name in registry.names():
            ids = list(registry.get(name).adl.step_ids)
            streams.extend([ids, ids[:2], ids[::-1]])
        return streams

    def test_backends_byte_identical(self, registry):
        adls = [registry.get(name).adl for name in registry.names()]
        batched = ActivityRecognizer(adls, backend="batched")
        scalar = ActivityRecognizer(adls, backend="scalar")
        for stream in self.streams(registry):
            assert batched.posterior(stream) == scalar.posterior(stream)
            assert batched.classify(stream) == scalar.classify(stream)

    def test_batch_calls_match_scalar_loop(self, registry):
        adls = [registry.get(name).adl for name in registry.names()]
        batched = ActivityRecognizer(adls, backend="batched")
        scalar = ActivityRecognizer(adls, backend="scalar")
        streams = self.streams(registry)
        assert batched.posterior_batch(streams) == [
            scalar.posterior(s) for s in streams
        ]
        assert batched.classify_batch(streams) == [
            scalar.classify(s) for s in streams
        ]
        # The scalar recognizer's batch API is the plain loop.
        assert scalar.posterior_batch(streams) == batched.posterior_batch(
            streams
        )

    def test_env_override_selects_backend(self, registry, monkeypatch):
        adls = [registry.get(name).adl for name in registry.names()]
        monkeypatch.setenv("REPRO_INFER_BACKEND", "scalar")
        assert ActivityRecognizer(adls)._batched is None
        monkeypatch.setenv("REPRO_INFER_BACKEND", "batched")
        assert ActivityRecognizer(adls)._batched is not None

    def test_invalid_backend_rejected(self, registry):
        adls = [registry.get(name).adl for name in registry.names()]
        with pytest.raises(ValueError):
            ActivityRecognizer(adls, backend="turbo")
