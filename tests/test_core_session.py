"""Unit tests for the session log."""

from repro.core.adl import ReminderLevel
from repro.core.bus import EventBus
from repro.core.events import (
    EpisodeCompletedEvent,
    PraiseEvent,
    ReminderEvent,
    TriggerReason,
)
from repro.core.session import SessionLog


def reminder(time=1.0):
    return ReminderEvent(
        time=time,
        tool_id=2,
        level=ReminderLevel.MINIMAL,
        reason=TriggerReason.STALL,
        message="Please use electronic-pot.",
        picture="pot.png",
    )


def completed(time=10.0, reminders=2):
    return EpisodeCompletedEvent(
        time=time, adl_name="tea-making", steps_taken=4,
        reminders_issued=reminders,
    )


class TestSessionLog:
    def test_attach_returns_self(self):
        bus = EventBus()
        log = SessionLog().attach(bus)
        assert isinstance(log, SessionLog)

    def test_collects_events(self):
        bus = EventBus()
        log = SessionLog().attach(bus)
        bus.publish(reminder())
        bus.publish(PraiseEvent(time=2.0, step_id=2, message="Excellent!"))
        bus.publish(completed())
        assert len(log.reminders) == 1
        assert log.praises == 1
        assert log.completions == 1

    def test_reminders_per_episode(self):
        bus = EventBus()
        log = SessionLog().attach(bus)
        bus.publish(completed(reminders=2))
        bus.publish(completed(time=20.0, reminders=4))
        assert log.reminders_per_episode() == 3.0

    def test_reminders_per_episode_empty(self):
        assert SessionLog().reminders_per_episode() == 0.0
