"""Unit tests for the routine trainer (offline TD(λ) training)."""

import numpy as np
import pytest

from repro.core.adl import Routine
from repro.core.config import PlanningConfig
from repro.core.errors import RoutineError
from repro.planning.state import episode_states
from repro.planning.trainer import RoutineTrainer
from repro.rl.dyna import DynaQLearner


def train(adl, episodes=120, seed=0, routine=None, config=None, learner=None):
    trainer = RoutineTrainer(
        adl, config or PlanningConfig(), learner=learner,
        rng=np.random.default_rng(seed)
    )
    routine = routine if routine is not None else adl.canonical_routine()
    log = [list(routine.step_ids)] * episodes
    return trainer, trainer.train(log, routine=routine)


class TestTraining:
    def test_converges_within_120_episodes(self, tea_adl):
        _, result = train(tea_adl)
        assert result.convergence[0.95] is not None
        assert result.convergence[0.98] is not None
        assert result.convergence[0.95] <= result.convergence[0.98]

    def test_final_greedy_accuracy_is_one(self, tea_adl):
        _, result = train(tea_adl)
        assert result.curve.greedy_accuracy[-1] == 1.0

    def test_policy_prefers_minimal_prompts(self, tea_adl):
        # The 100-vs-50 reward gap teaches minimality (care principle 2).
        _, result = train(tea_adl)
        assert result.curve.minimal_fraction[-1] == 1.0

    def test_curve_lengths_match_episodes(self, tea_adl):
        _, result = train(tea_adl, episodes=50)
        assert result.curve.iterations() == 50
        assert len(result.curve.smoothed_accuracy) == 50

    def test_learns_personalized_routine(self, tea_adl):
        routine = Routine(tea_adl, [1, 3, 2, 4])
        trainer, result = train(tea_adl, routine=routine)
        states = episode_states([1, 3, 2, 4])
        for index in range(len(states) - 1):
            action = trainer.learner.greedy_action(states[index], trainer.actions)
            assert action.tool_id == states[index + 1].current

    def test_empty_episode_log_rejected(self, tea_adl):
        trainer = RoutineTrainer(tea_adl)
        with pytest.raises(ValueError):
            trainer.train([])

    def test_routine_defaults_to_first_episode(self, tea_adl):
        trainer = RoutineTrainer(tea_adl, rng=np.random.default_rng(0))
        result = trainer.train([[1, 3, 2, 4]] * 60)
        assert list(result.routine.step_ids) == [1, 3, 2, 4]

    def test_invalid_default_routine_rejected(self, tea_adl):
        trainer = RoutineTrainer(tea_adl)
        with pytest.raises(RoutineError):
            trainer.train([[1, 1, 2]])

    def test_smoothed_is_rolling_mean_of_behaviour(self, tea_adl):
        _, result = train(tea_adl, episodes=30)
        window = RoutineTrainer.SMOOTHING_WINDOW
        curve = result.curve
        for index in range(len(curve.smoothed_accuracy)):
            chunk = curve.behaviour_accuracy[max(0, index - window + 1): index + 1]
            assert curve.smoothed_accuracy[index] == pytest.approx(
                sum(chunk) / len(chunk)
            )

    def test_reproducible_given_seed(self, tea_adl):
        _, first = train(tea_adl, seed=3)
        _, second = train(tea_adl, seed=3)
        assert first.curve.behaviour_accuracy == second.curve.behaviour_accuracy
        assert first.convergence == second.convergence


class TestDynaIntegration:
    def test_dyna_learner_supported(self, tea_adl):
        learner = DynaQLearner(
            learning_rate=0.2, discount=0.9, planning_steps=5, initial_q=1000.0
        )
        _, result = train(tea_adl, learner=learner, episodes=60)
        assert result.curve.greedy_accuracy[-1] == 1.0
        assert learner.planning_updates > 0


class TestTrainingResult:
    def test_converged_helper(self, tea_adl):
        _, result = train(tea_adl)
        assert result.converged(0.95)
        assert not result.converged(0.5) or result.convergence.get(0.5)


class TestAlternativeLearners:
    def test_double_q_learner_supported(self, tea_adl):
        # Double-Q is a drop-in for the trainer interface, but its
        # cross-table argmax churn (the update table's greedy pick is
        # valued by the *other* table, which may rate an untried tie
        # low) keeps snapshot greedy accuracy from pinning at 1.0 on
        # this formulation -- unbiasedness costs variance.  The claim
        # here is integration + a sane floor; Double-Q's own win (the
        # maximization-bias counterexample) is tests/test_rl_double_q.
        from repro.rl.double_q import DoubleQLearner
        from repro.rl.policies import EpsilonGreedyPolicy

        learner = DoubleQLearner(
            learning_rate=0.2,
            discount=0.9,
            policy=EpsilonGreedyPolicy(0.5),
            initial_q=0.0,
        )
        _, result = train(tea_adl, learner=learner)
        assert result.curve.greedy_accuracy[-1] >= 2 / 3

    def test_expected_sarsa_learner_supported(self, tea_adl):
        from repro.rl.expected_sarsa import ExpectedSarsaLearner

        config = PlanningConfig()
        learner = ExpectedSarsaLearner(
            learning_rate=config.learning_rate,
            discount=config.discount,
            epsilon=0.1,
            initial_q=config.initial_q,
        )
        _, result = train(tea_adl, learner=learner)
        assert result.curve.greedy_accuracy[-1] == 1.0
