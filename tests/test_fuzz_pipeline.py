"""Fuzz tests: random event streams must never break the pipeline.

Hypothesis drives the subsystems with arbitrary (valid-typed but
wild) input sequences and checks structural invariants: no crashes,
prompts only ever name real tools, praise only after a prompt, the
extractor's step stream never repeats a StepID back-to-back.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adls.tea_making import tea_making_definition
from repro.core.adl import IDLE_STEP_ID, ReminderLevel
from repro.core.bus import EventBus
from repro.core.config import SensingConfig
from repro.core.events import (
    PraiseEvent,
    PromptRequestEvent,
    ReminderEvent,
    StepEvent,
)
from repro.planning.action import PromptAction
from repro.planning.subsystem import PlanningSubsystem
from repro.sensing.subsystem import SensingSubsystem
from repro.sim.kernel import Simulator

TEA = tea_making_definition().adl
TOOL_IDS = list(TEA.step_ids)

# Tool streams: mostly valid tools, some idle markers, some garbage.
tool_stream = st.lists(
    st.one_of(
        st.sampled_from(TOOL_IDS),
        st.just(IDLE_STEP_ID),
        st.integers(min_value=90, max_value=99),
    ),
    max_size=60,
)


class RoutinePredictor:
    def predict(self, state):
        next_step = TEA.canonical_routine().next_step_id(state.current)
        if next_step is None:
            next_step = TEA.step_ids[0]
        return PromptAction(next_step, ReminderLevel.MINIMAL)


def build_pipeline():
    sim = Simulator()
    bus = EventBus()
    sensing = SensingSubsystem(
        sim=sim, adl=TEA, bus=bus, config=SensingConfig()
    )
    planning = PlanningSubsystem(
        sim=sim,
        adl=TEA,
        bus=bus,
        predictor=RoutinePredictor(),
        stall_timeout_for=lambda step_id: 10.0,
    )
    prompts, praises, steps = [], [], []
    bus.subscribe(PromptRequestEvent, prompts.append)
    bus.subscribe(PraiseEvent, praises.append)
    bus.subscribe(StepEvent, steps.append)
    return sim, sensing, planning, prompts, praises, steps


@given(tool_stream, st.lists(st.floats(min_value=0.1, max_value=40.0),
                             max_size=60))
@settings(max_examples=60, deadline=None)
def test_pipeline_survives_arbitrary_usage_streams(tools, gaps):
    sim, sensing, planning, prompts, praises, steps = build_pipeline()
    for index, tool in enumerate(tools):
        if tool == IDLE_STEP_ID:
            # Nothing used: just let time pass.
            pass
        else:
            sensing.inject_usage(tool)
        gap = gaps[index] if index < len(gaps) else 1.0
        sim.run_until(sim.now + gap)
    # Invariant 1: every prompt names a real tool of the ADL.
    assert all(TEA.has_step(p.tool_id) for p in prompts)
    # Invariant 2: wrong-tool prompts always carry the offending tool.
    for prompt in prompts:
        if prompt.wrong_tool_id is not None:
            assert TEA.has_step(prompt.wrong_tool_id)
    # Invariant 3: the step stream never repeats a StepID.
    ids = [event.step_id for event in steps]
    assert all(a != b for a, b in zip(ids, ids[1:]))
    # Invariant 4: praise requires at least one earlier prompt.
    if praises:
        assert prompts
        assert min(p.time for p in praises) >= min(p.time for p in prompts)


@given(tool_stream)
@settings(max_examples=60, deadline=None)
def test_sensing_history_matches_accepted_usages(tools):
    sim, sensing, planning, *_ = build_pipeline()
    accepted = 0
    for tool in tools:
        if tool != IDLE_STEP_ID:
            sensing.inject_usage(tool)
            if TEA.has_step(tool):
                accepted += 1
        sim.run_until(sim.now + 1.0)
    assert len(sensing.history) == accepted
    foreign = sum(
        1 for tool in tools if tool != IDLE_STEP_ID and not TEA.has_step(tool)
    )
    assert sensing.frames_ignored == foreign


@given(st.lists(st.sampled_from(TOOL_IDS), min_size=1, max_size=40))
@settings(max_examples=40, deadline=None)
def test_episode_completion_count_matches_terminal_visits(tools):
    sim, sensing, planning, prompts, praises, steps = build_pipeline()
    for tool in tools:
        sensing.inject_usage(tool)
        sim.run_until(sim.now + 1.0)
    # Completions can never exceed visits to the terminal step.
    terminal_visits = sum(
        1 for event in steps if event.step_id == TEA.terminal_step_id
    )
    assert planning.episodes_completed <= terminal_visits
