"""Unit tests for transitions and the replay buffer."""

import numpy as np
import pytest

from repro.rl.experience import ReplayBuffer, Transition


def transition(i):
    return Transition(
        state=f"s{i}",
        action="a",
        reward=float(i),
        next_state=f"s{i + 1}",
        done=False,
        next_actions=("a", "b"),
    )


class TestBuffer:
    def test_add_and_len(self):
        buffer = ReplayBuffer(capacity=10)
        for i in range(3):
            buffer.add(transition(i))
        assert len(buffer) == 3

    def test_capacity_evicts_oldest(self):
        buffer = ReplayBuffer(capacity=3)
        for i in range(5):
            buffer.add(transition(i))
        assert [t.reward for t in buffer.last()] == [2.0, 3.0, 4.0]

    def test_last_k(self):
        buffer = ReplayBuffer()
        for i in range(5):
            buffer.add(transition(i))
        assert [t.reward for t in buffer.last(2)] == [3.0, 4.0]

    def test_sample_with_replacement(self):
        buffer = ReplayBuffer()
        buffer.add(transition(0))
        samples = buffer.sample(np.random.default_rng(0), 5)
        assert len(samples) == 5
        assert all(s.state == "s0" for s in samples)

    def test_sample_empty_raises(self):
        with pytest.raises(ValueError):
            ReplayBuffer().sample(np.random.default_rng(0), 1)

    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            ReplayBuffer(capacity=0)

    def test_sample_draws_across_buffer(self):
        buffer = ReplayBuffer()
        for i in range(10):
            buffer.add(transition(i))
        samples = buffer.sample(np.random.default_rng(1), 100)
        assert len({s.state for s in samples}) > 5


class TestTransition:
    def test_frozen(self):
        t = transition(0)
        with pytest.raises(AttributeError):
            t.reward = 9.0

    def test_next_actions_default_empty(self):
        t = Transition("s", "a", 0.0, "t", True)
        assert t.next_actions == ()
