"""Unit tests for the usage history store."""

import pytest

from repro.sensing.history import UsageHistory


class TestAppend:
    def test_records_in_order(self):
        history = UsageHistory()
        history.append(1.0, 3)
        history.append(2.0, 4)
        assert [(r.time, r.tool_id) for r in history.records()] == [
            (1.0, 3),
            (2.0, 4),
        ]
        assert len(history) == 2

    def test_out_of_order_rejected(self):
        history = UsageHistory()
        history.append(5.0, 1)
        with pytest.raises(ValueError):
            history.append(4.0, 1)

    def test_of_tool_filters(self):
        history = UsageHistory()
        for time, tool in [(1, 1), (2, 2), (3, 1)]:
            history.append(time, tool)
        assert len(history.of_tool(1)) == 2
        assert history.of_tool(9) == []

    def test_last_time(self):
        history = UsageHistory()
        assert history.last_time() is None
        history.append(3.0, 1)
        assert history.last_time() == 3.0


class TestStepSequence:
    def test_collapses_consecutive_duplicates(self):
        history = UsageHistory()
        for time, tool in enumerate([1, 1, 1, 2, 2, 3, 1]):
            history.append(float(time), tool)
        assert history.step_sequence() == [1, 2, 3, 1]

    def test_empty(self):
        assert UsageHistory().step_sequence() == []


class TestDwellStats:
    def test_single_run_durations(self):
        history = UsageHistory()
        # Tool 1 from t=0 to t=10 (handover to tool 2), tool 2 from 10
        # to 16, tool 3 never hands over.
        history.append(0.0, 1)
        history.append(4.0, 1)
        history.append(10.0, 2)
        history.append(16.0, 3)
        stats = history.dwell_stats()
        assert stats[1].mean == pytest.approx(10.0)
        assert stats[2].mean == pytest.approx(6.0)
        assert 3 not in stats

    def test_multiple_runs_mean_and_sd(self):
        history = UsageHistory()
        # Two runs of tool 1: dwell 10 and 14.
        points = [(0.0, 1), (10.0, 2), (12.0, 1), (26.0, 2)]
        for time, tool in points:
            history.append(time, tool)
        stats = history.dwell_stats()
        assert stats[1].count == 2
        assert stats[1].mean == pytest.approx(12.0)
        assert stats[1].sd == pytest.approx(2.8284, rel=1e-3)

    def test_timeout_formula(self):
        history = UsageHistory()
        points = [(0.0, 1), (10.0, 2), (12.0, 1), (26.0, 2)]
        for time, tool in points:
            history.append(time, tool)
        stats = history.dwell_stats()[1]
        assert stats.timeout(3.0) == pytest.approx(12.0 + 3.0 * stats.sd)


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        history = UsageHistory()
        for time, tool in [(1.0, 1), (2.5, 2)]:
            history.append(time, tool)
        path = tmp_path / "history.json"
        history.save(path)
        restored = UsageHistory.load(path)
        assert restored.records() == history.records()
