"""The shared-memory policy arena and its lifecycle guarantees.

The arena owns every published segment in the fleet parent; the tests
pin the contract the executor relies on: publish/attach round trips,
deterministic segment naming (registry computable before artifacts
exist), zero-copy worker attachment through the pool initializer, and
-- most load-bearing -- that ``/dev/shm`` holds no arena segment after
a run ends, whether the run succeeded, failed mid-wave, or was closed
twice.
"""

from __future__ import annotations

import glob
from multiprocessing import shared_memory

import pytest

from repro.core.config import PlanningConfig
from repro.evalx.parallel import Cell, WorkerPool, run_cells
from repro.fleet.spec import FleetSpec
from repro.planning.action import action_space
from repro.planning.shm import (
    PolicyArena,
    activate_local_arena,
    arena_artifact,
    deactivate_local_arena,
    install_worker_registry,
    installed_registry,
)
from repro.planning.store import (
    PolicyCache,
    train_routine_cached,
    training_cache_key,
)

SMALL_SPEC = FleetSpec(
    adl_name="tea-making",
    homes=6,
    seed=0,
    episodes_per_home=1,
    training_episodes=30,
    seed_classes=2,
    shard_size=3,
)


def _leaked_segments():
    return sorted(glob.glob("/dev/shm/rpp*"))


@pytest.fixture
def packed_policy(tmp_path, tea_adl):
    """(cache key, packed artifact bytes) for one small training."""
    cache = PolicyCache(tmp_path / "cache")
    config = PlanningConfig()
    ids = list(tea_adl.canonical_routine().step_ids)
    train_routine_cached(tea_adl, ids, config, 0, 30, cache=cache)
    key = training_cache_key(tea_adl.name, ids, config, 0, 30)
    return key, cache.artifact_path_for(key).read_bytes()


class TestPolicyArena:
    def test_publish_and_decode_round_trip(self, packed_policy, tea_adl):
        key, blob = packed_policy
        with PolicyArena(tag="t1") as arena:
            arena.publish(key, blob)
            artifact = arena.artifact(key)
            assert artifact is not None
            assert artifact.matches(tea_adl)
            assert arena.registry() == {key: arena.segment_name(key)}
            # The contract close() documents: views die before the
            # mappings unmap.
            del artifact
        assert _leaked_segments() == []

    def test_segment_names_deterministic_and_short(self, packed_policy):
        key, _ = packed_policy
        first = PolicyArena(tag="t2")
        second = PolicyArena(tag="t2")
        assert first.segment_name(key) == second.segment_name(key)
        assert PolicyArena(tag="other").segment_name(key) != (
            first.segment_name(key)
        )
        # shm_open portability: at most 31 chars including the
        # implementation's leading slash.
        assert len(first.segment_name(key)) <= 30
        for arena in (first, second):
            arena.close()

    def test_close_unlinks_and_is_idempotent(self, packed_policy):
        key, blob = packed_policy
        arena = PolicyArena(tag="t3")
        arena.publish(key, blob)
        name = arena.segment_name(key)
        arena.close()
        arena.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        with pytest.raises(ValueError):
            arena.publish(key, blob)
        assert _leaked_segments() == []

    def test_publish_reclaims_stale_segment(self, packed_policy):
        key, blob = packed_policy
        arena = PolicyArena(tag="t4")
        # A killed earlier run left a same-named segment behind.
        stale = shared_memory.SharedMemory(
            name=arena.segment_name(key), create=True, size=8
        )
        stale.close()
        arena.publish(key, blob)
        assert arena.artifact(key) is not None
        arena.close()
        assert _leaked_segments() == []


class TestWorkerResolution:
    def test_local_arena_serves_inline_lookups(self, packed_policy, tea_adl):
        key, blob = packed_policy
        arena = PolicyArena(tag="t5")
        arena.publish(key, blob)
        activate_local_arena(arena)
        try:
            artifact = arena_artifact(key)
            assert artifact is not None and artifact.matches(tea_adl)
            del artifact
        finally:
            deactivate_local_arena(arena)
            arena.close()
        assert _leaked_segments() == []

    def test_registry_attach_serves_and_memoizes(
        self, packed_policy, tea_adl
    ):
        key, blob = packed_policy
        arena = PolicyArena(tag="t6")
        arena.publish(key, blob)
        install_worker_registry(arena.registry())
        try:
            first = arena_artifact(key)
            assert first is not None and first.matches(tea_adl)
            assert arena_artifact(key) is first  # per-process memo
        finally:
            install_worker_registry({})
            arena.close()
        assert _leaked_segments() == []

    def test_unknown_key_and_missing_segment_fall_through(self):
        install_worker_registry({"known": "rpp0000000000000000000000"})
        try:
            assert arena_artifact("unknown") is None
            assert arena_artifact("known") is None  # never published
        finally:
            install_worker_registry({})

    def test_install_replaces_previous_registry(self):
        install_worker_registry({"a": "x"})
        install_worker_registry({"b": "y"})
        try:
            assert installed_registry() == {"b": "y"}
        finally:
            install_worker_registry({})


class TestPoolInitializer:
    def test_initializer_runs_in_every_worker(self):
        registry = {"key": "rppdeadbeefdeadbeefdeadbe"}
        with WorkerPool(
            2, initializer=install_worker_registry, initargs=(registry,)
        ) as pool:
            cells = [Cell(installed_registry) for _ in range(4)]
            results, _ = run_cells(cells, jobs=2, pool=pool)
        assert results == [registry] * 4

    def test_jobs_1_pool_never_forks(self):
        pool = WorkerPool(1, initializer=install_worker_registry,
                          initargs=({},))
        assert pool._executor is None
        pool.close()


def _boom_cell(*args, **kwargs):
    raise RuntimeError("boom")


class TestFleetLeakHygiene:
    def test_no_segments_after_successful_runs(self):
        from repro.fleet.executor import run_fleet

        for jobs in (1, 2):
            run_fleet(SMALL_SPEC, jobs=jobs, policy_plane="shm")
            assert _leaked_segments() == []

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_no_segments_after_failed_run(self, monkeypatch, jobs):
        # A shard cell blowing up mid-wave-2 must still tear the
        # arena down: run_fleet's finally owns the unlink.
        from repro.fleet import executor

        monkeypatch.setattr(executor, "_shard_cell", _boom_cell)
        with pytest.raises(RuntimeError, match="boom"):
            executor.run_fleet(SMALL_SPEC, jobs=jobs, policy_plane="shm")
        assert _leaked_segments() == []
