"""Tests for the paper-experiment harness (reduced sample counts).

These are the executable claims of the reproduction: each test pins
the *shape* the paper reports, on a fast configuration of the same
code paths the full benches run.
"""

import pytest

from repro.evalx.baseline_compare import run_baseline_comparison
from repro.evalx.extract_precision import run_extract_precision
from repro.evalx.hardware_table import table1_hardware, table2_rows, table2_sensor_map
from repro.evalx.learning_curve import run_learning_curve
from repro.evalx.predict_precision import run_predict_precision
from repro.evalx.scenario import run_tea_scenario


class TestTable1:
    def test_hardware_table_renders_paper_fields(self):
        text = table1_hardware()
        for expected in (
            "Microchip PIC18LF4620",
            "4 KB",
            "64 KB",
            "ChipCon CC1000",
            "EEPROM(16 KB)",
        ):
            assert expected in text


class TestTable2:
    def test_rows_cover_both_adls(self, registry):
        rows = table2_rows(
            [registry.get("tooth-brushing"), registry.get("tea-making")]
        )
        assert len(rows) == 8
        assert ("tea-making", "Pour hot water into kettle",
                "Pressure on electronic-pot") in rows

    def test_render(self, registry):
        text = table2_sensor_map([registry.get("tea-making")])
        assert "Acce. on tea-box" in text


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self, registry):
        return run_extract_precision(
            [registry.get("tooth-brushing"), registry.get("tea-making")],
            samples_per_step=25,
            seed=3,
        )

    def test_eight_rows(self, result):
        assert len(result.rows) == 8

    def test_long_steps_detect_reliably(self, result):
        for step in ("Brush the teeth", "Gargle with water",
                     "Put tea-leaf into kettle", "Pour tea into tea cup"):
            assert result.row_for(step).precision >= 0.9

    def test_short_steps_are_the_weakest(self, result):
        # The paper's weakest row ("Pour hot water", 80%) must be our
        # weakest; the two short steps must both miss sometimes while
        # the long, vigorous steps stay >= 90%.
        towel = result.row_for("Dry with a towel").precision
        pour = result.row_for("Pour hot water into kettle").precision
        others = [
            row.precision
            for row in result.rows
            if row.step_name not in ("Dry with a towel",
                                     "Pour hot water into kettle")
        ]
        assert pour <= min(others)
        assert 0.5 <= pour < 1.0
        assert 0.5 <= towel < 1.0

    def test_table_renders(self, result):
        assert "Extract Precision" in result.to_table()


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self, registry):
        return run_learning_curve(
            registry.get("tea-making").adl, seeds=(0, 1, 2, 3)
        )

    def test_all_seeds_converge_within_budget(self, result):
        assert result.convergence_rate(0.95) == 1.0
        assert result.convergence_rate(0.98) == 1.0
        assert all(i <= 120 for i in result.converged_iterations(0.98))

    def test_98_needs_at_least_as_many_iterations(self, result):
        for run in result.runs:
            assert run.convergence[0.98] >= run.convergence[0.95]

    def test_curve_reaches_high_accuracy(self, result):
        for run in result.runs:
            assert run.curve.smoothed_accuracy[-1] >= 0.95
            assert run.curve.greedy_accuracy[-1] == 1.0

    def test_render(self, result):
        assert "Criterion" in result.to_table()
        assert "*" in result.representative_plot()


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self, registry):
        return run_predict_precision(
            [registry.get("tooth-brushing"), registry.get("tea-making")],
            samples_per_adl=12,
        )

    def test_first_steps_untestable(self, result):
        for name in ("Put toothpaste on the brush", "Put tea-leaf into kettle"):
            assert result.row_for(name).precision is None

    def test_non_first_steps_all_perfect(self, result):
        for row in result.rows:
            if row.precision is not None:
                assert row.precision == 1.0

    def test_render_has_dashes(self, result):
        assert "| -" in result.to_table()


class TestFigure1:
    @pytest.fixture(scope="class")
    def scenario(self):
        return run_tea_scenario()

    def test_structure(self, scenario):
        assert scenario.structure_ok()

    def test_anchor_ordering(self, scenario):
        assert (
            scenario.wrong_tool_prompt_time
            < scenario.first_praise_time
            < scenario.stall_prompt_time
            < scenario.second_praise_time
        )

    def test_methods_counts(self, scenario):
        assert scenario.wrong_tool_methods == 4
        assert scenario.stall_methods == 3

    def test_timeline_renders(self, scenario):
        text = scenario.to_table()
        assert "electronic-pot" in text


class TestBaselineComparison:
    @pytest.fixture(scope="class")
    def result(self, registry):
        return run_baseline_comparison(
            registry.get("tea-making").adl, n_users=8, episodes=60,
            shuffle_probability=1.0,
        )

    def test_learning_systems_perfect(self, result):
        assert result.row_for("CoReDA (TD-lambda Q)").mean_accuracy == 1.0
        assert result.row_for("trigram").mean_accuracy == 1.0

    def test_preplanned_systems_fail_personalization(self, result):
        coreda = result.row_for("CoReDA (TD-lambda Q)").mean_accuracy
        assert result.row_for("fixed sequence").mean_accuracy < coreda
        assert result.row_for("MDP planner (canonical)").mean_accuracy < coreda

    def test_render(self, result):
        assert "Pre-planned" in result.to_table()


class TestCurveCsv:
    def test_csv_shape(self, registry):
        from repro.evalx.learning_curve import run_learning_curve

        result = run_learning_curve(
            registry.get("tea-making").adl, episodes=20, seeds=(0, 1)
        )
        csv = result.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "seed,iteration,behaviour,smoothed,greedy,minimal"
        assert len(lines) == 1 + 2 * 20
        first = lines[1].split(",")
        assert first[0] == "0" and first[1] == "1"
        assert all(0.0 <= float(x) <= 1.0 for x in first[2:])
