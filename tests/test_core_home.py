"""Tests for the multi-ADL care-home deployment."""

import pytest

from repro.core.config import CoReDAConfig
from repro.core.errors import CoReDAError, UnknownADLError
from repro.core.home import CareHome, ScheduledActivity


@pytest.fixture(scope="module")
def home(registry):
    home = CareHome(
        [registry.get("tooth-brushing"), registry.get("tea-making")],
        CoReDAConfig(seed=3),
    )
    home.train_all()
    return home


class TestConstruction:
    def test_needs_at_least_one_adl(self):
        with pytest.raises(ValueError):
            CareHome([])

    def test_shared_world(self, home):
        tooth = home.system("tooth-brushing")
        tea = home.system("tea-making")
        assert tooth.sim is tea.sim is home.sim
        assert tooth.trace is tea.trace
        assert tooth.bus is not tea.bus  # no cross-talk

    def test_unknown_adl(self, home):
        with pytest.raises(UnknownADLError):
            home.system("cooking")

    def test_training_required_before_day(self, registry):
        fresh = CareHome([registry.get("tea-making")], CoReDAConfig(seed=1))
        with pytest.raises(CoReDAError):
            fresh.run_day([ScheduledActivity("tea-making")])


class TestScheduledDay:
    def test_day_runs_both_activities(self, home):
        result = home.run_day(
            [
                ScheduledActivity("tooth-brushing", start_at=home.sim.now),
                ScheduledActivity("tea-making", start_at=home.sim.now + 4000.0),
            ]
        )
        assert result.completed == 2
        assert [name for name, _ in result.outcomes] == [
            "tooth-brushing",
            "tea-making",
        ]

    def test_clock_flows_across_activities(self, home):
        start = home.sim.now
        target = start + 5000.0
        home.run_day([ScheduledActivity("tea-making", start_at=target)])
        assert home.sim.now >= target

    def test_activities_sorted_by_start(self, home):
        now = home.sim.now
        result = home.run_day(
            [
                ScheduledActivity("tea-making", start_at=now + 9000.0),
                ScheduledActivity("tooth-brushing", start_at=now),
            ]
        )
        assert [name for name, _ in result.outcomes] == [
            "tooth-brushing",
            "tea-making",
        ]


class TestReports:
    def test_one_report_per_adl(self, home):
        reports = home.caregiver_reports()
        assert [report.adl_name for report in reports] == [
            "tea-making",
            "tooth-brushing",
        ]
        assert all(report.episodes_completed >= 1 for report in reports)


class TestConcurrency:
    def test_two_activities_run_simultaneously(self, home):
        start = home.sim.now
        result = home.run_concurrently(["tooth-brushing", "tea-making"])
        assert result.completed == 2
        # Both finished within one shared wall-clock window: total
        # elapsed is far less than the sum of two sequential episodes.
        durations = [outcome.duration for _, outcome in result.outcomes]
        elapsed = home.sim.now - start
        assert elapsed < sum(durations)

    def test_no_cross_talk_between_deployments(self, home):
        tooth_before = len(home.system("tooth-brushing").sensing.history)
        tea_before = len(home.system("tea-making").sensing.history)
        home.run_concurrently(["tooth-brushing", "tea-making"])
        tooth = home.system("tooth-brushing")
        tea = home.system("tea-making")
        # Each history only ever contains its own ADL's tools.
        assert all(
            tooth.adl.has_step(record.tool_id)
            for record in tooth.sensing.history.records()
        )
        assert all(
            tea.adl.has_step(record.tool_id)
            for record in tea.sensing.history.records()
        )
        assert len(tooth.sensing.history) > tooth_before
        assert len(tea.sensing.history) > tea_before

    def test_concurrency_requires_training(self, registry):
        from repro.core.config import CoReDAConfig

        fresh = CareHome([registry.get("tea-making")], CoReDAConfig(seed=2))
        with pytest.raises(CoReDAError):
            fresh.run_concurrently(["tea-making"])
