"""The deterministic parallel substrate: same bytes at every --jobs.

The acceptance gate for the whole evalx refactor is byte-identity:
``run_all`` (and every section underneath it) must produce the same
report text serial, parallel, and cached.  These tests pin that down
at three levels -- the cell pool, one real section, and the full fast
report.
"""

import pytest

from repro.evalx.learning_curve import plan_learning_curve
from repro.evalx.parallel import (
    Cell,
    Section,
    WorkerPool,
    cell_seed,
    run_cells,
    run_section,
    run_sections,
)
from repro.evalx.runner import run_all, write_report


def _square(value):
    return value * value


def _pair(left, right):
    return (left, right)


def _boom(value):
    raise RuntimeError(f"cell {value} exploded")


def _touch(directory, index):
    """Leave a sentinel proving this cell actually executed."""
    import pathlib

    pathlib.Path(directory, f"ran-{index}").write_text("x")
    return index


class TestCellSeed:
    def test_deterministic(self):
        assert cell_seed("sweep", 3, 0) == cell_seed("sweep", 3, 0)

    def test_distinct_across_cells(self):
        seeds = {cell_seed("sweep", index, 0) for index in range(50)}
        assert len(seeds) == 50

    def test_distinct_across_sweeps(self):
        assert cell_seed("alpha", 0, 0) != cell_seed("epsilon", 0, 0)

    def test_distinct_across_base_seeds(self):
        assert cell_seed("sweep", 0, 0) != cell_seed("sweep", 0, 1)


class TestRunCells:
    def test_results_in_submission_order(self):
        cells = [Cell(_square, (n,)) for n in range(8)]
        results, _ = run_cells(cells)
        assert results == [n * n for n in range(8)]

    def test_parallel_matches_serial(self):
        cells = [Cell(_square, (n,)) for n in range(8)]
        serial, _ = run_cells(cells, jobs=1)
        parallel, _ = run_cells(cells, jobs=2)
        assert parallel == serial

    def test_kwargs_pass_through(self):
        results, _ = run_cells([Cell(_pair, (1,), {"right": 2})])
        assert results == [(1, 2)]

    def test_per_cell_timing_is_nonnegative(self):
        cells = [Cell(_square, (n,)) for n in range(3)]
        _, seconds = run_cells(cells)
        assert len(seconds) == len(cells)
        assert all(elapsed >= 0.0 for elapsed in seconds)


class TestBoundedSubmission:
    """run_cells must not submit everything eagerly (fleet scale)."""

    def test_explicit_window_preserves_order(self):
        cells = [Cell(_square, (n,)) for n in range(10)]
        results, _ = run_cells(cells, jobs=2, window=2)
        assert results == [n * n for n in range(10)]

    def test_error_propagates_inline(self):
        with pytest.raises(RuntimeError, match="cell 1 exploded"):
            run_cells([Cell(_square, (0,)), Cell(_boom, (1,))], jobs=1)

    def test_error_propagates_parallel(self):
        cells = [Cell(_boom, (n,)) for n in range(4)]
        with pytest.raises(RuntimeError, match="exploded"):
            run_cells(cells, jobs=2, window=2)

    def test_failure_cancels_unsubmitted_cells(self, tmp_path):
        """Cells beyond the window never run once a cell has failed.

        With ``window=2`` at most cells 1 and 2 can be in flight when
        cell 0's failure is observed; cells from index 3 on must never
        have been submitted, so their sentinels cannot exist.
        """
        window = 2
        cells = [Cell(_boom, (0,))] + [
            Cell(_touch, (str(tmp_path), index)) for index in range(1, 30)
        ]
        with pytest.raises(RuntimeError, match="cell 0 exploded"):
            run_cells(cells, jobs=2, window=window)
        for index in range(window + 1, 30):
            assert not (tmp_path / f"ran-{index}").exists()

    def test_windowed_matches_inline(self):
        cells = [Cell(_square, (n,)) for n in range(9)]
        inline, _ = run_cells(cells, jobs=1)
        windowed, _ = run_cells(cells, jobs=3, window=3)
        assert windowed == inline


class TestWorkerPool:
    def test_pool_reused_across_waves(self):
        with WorkerPool(2) as pool:
            first, _ = run_cells(
                [Cell(_square, (n,)) for n in range(4)], jobs=2, pool=pool
            )
            executor = pool.executor()
            second, _ = run_cells(
                [Cell(_square, (n,)) for n in range(4, 8)], jobs=2, pool=pool
            )
            assert pool.executor() is executor
        assert first == [0, 1, 4, 9]
        assert second == [16, 25, 36, 49]

    def test_lazy_pool_never_forks_for_inline_runs(self):
        with WorkerPool(4) as pool:
            results, _ = run_cells(
                [Cell(_square, (n,)) for n in range(3)], jobs=1, pool=pool
            )
            assert pool._executor is None
        assert results == [0, 1, 4]

    def test_close_is_idempotent(self):
        pool = WorkerPool(2)
        pool.executor()
        pool.close()
        pool.close()

    def test_pool_survives_a_failed_wave(self):
        with WorkerPool(2) as pool:
            with pytest.raises(RuntimeError):
                run_cells(
                    [Cell(_boom, (n,)) for n in range(3)], jobs=2, pool=pool
                )
            results, _ = run_cells(
                [Cell(_square, (n,)) for n in range(3)], jobs=2, pool=pool
            )
        assert results == [0, 1, 4]


class TestRunSections:
    def test_merge_sees_section_cells_only(self):
        sections = [
            Section("a", [Cell(_square, (n,)) for n in (1, 2)], list),
            Section("b", [Cell(_square, (n,)) for n in (3,)], list),
        ]
        assert run_sections(sections) == [[1, 4], [9]]

    def test_timings_filled_per_section(self):
        timings = {}
        run_sections(
            [Section("only", [Cell(_square, (2,))], list)], timings=timings
        )
        assert set(timings) == {"only"}
        assert timings["only"] >= 0.0


class TestSectionDeterminism:
    def test_learning_curve_section_parallel_identical(self, tea_adl):
        section = plan_learning_curve(tea_adl, seeds=(0, 1), episodes=40)
        serial = run_section(section, jobs=1)
        parallel = run_section(section, jobs=2)
        assert parallel.to_table() == serial.to_table()
        assert parallel.representative_plot() == serial.representative_plot()


class TestRunAllDeterminism:
    def test_fast_report_byte_identical_across_jobs(self, tmp_path):
        cache = str(tmp_path / "cache")
        serial = run_all(fast=True, include_ablations=False)
        parallel = run_all(fast=True, include_ablations=False, jobs=2)
        cached_cold = run_all(
            fast=True, include_ablations=False, cache_dir=cache
        )
        cached_warm = run_all(
            fast=True, include_ablations=False, jobs=2, cache_dir=cache
        )
        assert parallel == serial
        assert cached_cold == serial
        assert cached_warm == serial

    def test_report_ends_with_single_newline(self):
        report = run_all(fast=True, include_ablations=False)
        assert report.endswith("\n")
        assert not report.endswith("\n\n")


class TestWriteReport:
    def test_writes_utf8_regardless_of_locale(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        text = "Caregiver report — café\n"
        write_report(text, output=str(path))
        assert capsys.readouterr().out == text
        assert path.read_bytes() == text.encode("utf-8")

    def test_no_output_file_without_path(self, tmp_path, capsys):
        write_report("hello\n")
        assert capsys.readouterr().out == "hello\n"
        assert list(tmp_path.iterdir()) == []
