"""Unit tests for table / curve rendering."""

import pytest

from repro.evalx.tables import ascii_curve, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["A", "Long header"], [["x", "1"], ["yyyy", "2"]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1
        data_lines = [line for line in lines if "|" in line]
        assert len({line.index("|") for line in data_lines}) == 1

    def test_title_prepended(self):
        text = format_table(["A"], [["x"]], title="Table 9")
        assert text.splitlines()[0] == "Table 9"

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["A", "B"], [["only-one"]])

    def test_cells_stringified(self):
        text = format_table(["n"], [[42]])
        assert "42" in text


class TestAsciiCurve:
    def test_contains_marks_and_axis(self):
        text = ascii_curve([0.1, 0.5, 0.9], width=3, height=5)
        assert "*" in text
        assert "iterations 1..3" in text

    def test_rising_curve_marks_rise(self):
        text = ascii_curve([0.0, 1.0], width=2, height=5)
        lines = [line for line in text.splitlines() if "|" in line]
        top_row = lines[0]
        bottom_row = lines[-1]
        assert "*" in top_row  # the 1.0 point
        assert "*" in bottom_row  # the 0.0 point

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_curve([])

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            ascii_curve([0.5], y_min=1.0, y_max=0.0)

    def test_long_series_compressed(self):
        text = ascii_curve([0.5] * 1000, width=40)
        assert "iterations 1..1000" in text
