"""The indexed dense RL backend and its bit-identity contract.

The dense backend (``repro.rl.dense``) must be *indistinguishable*
from the sparse dict-backed one: same RNG draw sequence, same learning
curves, same convergence iterations, same greedy policies and the same
``training_document`` bytes, for every learner.  These tests pin that
contract down -- any arithmetic reordering in the fused dense paths
shows up here as a float mismatch.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import PlanningConfig
from repro.planning.action import action_space
from repro.planning.rewards_coreda import CoReDAReward
from repro.planning.state import episode_states
from repro.planning.store import (
    PolicyCache,
    train_routine_cached,
    training_cache_key,
    training_document,
)
from repro.planning.trainer import RoutineTrainer
from repro.rl.dense import (
    DenseQTable,
    DenseTraces,
    StateActionIndex,
    make_qtable,
    make_traces,
)
from repro.rl.double_q import DoubleQLearner
from repro.rl.dyna import DynaQLearner
from repro.rl.expected_sarsa import ExpectedSarsaLearner
from repro.rl.policies import EpsilonGreedyPolicy, SoftmaxPolicy
from repro.rl.qtable import QTable
from repro.rl.sarsa import SarsaLambdaLearner
from repro.rl.schedules import ExponentialDecay
from repro.rl.tdlambda import TDLambdaQLearner
from repro.rl.traces import TraceKind
from repro.sim.random import seeded_generator

EPISODES = 60

#: learner name -> factory(backend, config); covers every learner the
#: evaluation suite trains, in both trace flavours where applicable.
LEARNERS = {
    "tdlambda-replacing": lambda backend, c: TDLambdaQLearner(
        learning_rate=c.learning_rate, discount=c.discount,
        trace_decay=c.trace_decay, policy=_decay_policy(c),
        trace_kind=TraceKind.REPLACING, initial_q=c.initial_q,
        q_backend=backend,
    ),
    "tdlambda-accumulating": lambda backend, c: TDLambdaQLearner(
        learning_rate=c.learning_rate, discount=c.discount,
        trace_decay=c.trace_decay, policy=_decay_policy(c),
        trace_kind=TraceKind.ACCUMULATING, initial_q=c.initial_q,
        q_backend=backend,
    ),
    "tdlambda-softmax": lambda backend, c: TDLambdaQLearner(
        learning_rate=c.learning_rate, discount=c.discount,
        trace_decay=c.trace_decay, policy=SoftmaxPolicy(50.0),
        initial_q=c.initial_q, q_backend=backend,
    ),
    "dyna": lambda backend, c: DynaQLearner(
        learning_rate=c.learning_rate, discount=c.discount,
        planning_steps=10, policy=_decay_policy(c),
        initial_q=c.initial_q, q_backend=backend,
    ),
    "double-q": lambda backend, c: DoubleQLearner(
        learning_rate=c.learning_rate, discount=c.discount,
        policy=_decay_policy(c), initial_q=c.initial_q, q_backend=backend,
    ),
    "expected-sarsa": lambda backend, c: ExpectedSarsaLearner(
        learning_rate=c.learning_rate, discount=c.discount,
        epsilon=0.2, initial_q=c.initial_q, q_backend=backend,
    ),
}


def _decay_policy(config: PlanningConfig) -> EpsilonGreedyPolicy:
    return EpsilonGreedyPolicy(
        ExponentialDecay(config.epsilon, config.epsilon_decay)
    )


def _train(adl, learner_name: str, backend: str, seed: int):
    config = PlanningConfig(q_backend=backend)
    learner = LEARNERS[learner_name](backend, config)
    trainer = RoutineTrainer(
        adl, config, learner=learner, rng=seeded_generator(seed)
    )
    return trainer.train([list(adl.step_ids)] * EPISODES)


def _sup_norm(learner_a, learner_b) -> float:
    if isinstance(learner_a, DoubleQLearner):
        return max(
            learner_a.q_a.max_abs_difference(learner_b.q_a),
            learner_a.q_b.max_abs_difference(learner_b.q_b),
        )
    return learner_a.q.max_abs_difference(learner_b.q)


# ---------------------------------------------------------------------------
# Bit-identity across backends, every learner
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("learner_name", sorted(LEARNERS))
@pytest.mark.parametrize("seed", [0, 3])
def test_backends_train_identically(tea_adl, learner_name, seed):
    sparse = _train(tea_adl, learner_name, "sparse", seed)
    dense = _train(tea_adl, learner_name, "dense", seed)
    # Exact float equality, not approx: the contract is bit-identity.
    assert sparse.curve.behaviour_accuracy == dense.curve.behaviour_accuracy
    assert sparse.curve.smoothed_accuracy == dense.curve.smoothed_accuracy
    assert sparse.curve.greedy_accuracy == dense.curve.greedy_accuracy
    assert sparse.curve.minimal_fraction == dense.curve.minimal_fraction
    assert sparse.convergence == dense.convergence
    assert _sup_norm(sparse.learner, dense.learner) == 0.0


@pytest.mark.parametrize(
    "trace_kind", [TraceKind.REPLACING, TraceKind.ACCUMULATING]
)
def test_sarsa_backends_train_identically(tea_adl, trace_kind):
    """Naive SARSA(λ), trained the way the ablation bench trains it."""

    def run(backend):
        config = PlanningConfig(q_backend=backend)
        actions = tuple(action_space(tea_adl))
        learner = SarsaLambdaLearner(
            learning_rate=config.learning_rate, discount=config.discount,
            trace_decay=config.trace_decay, policy=_decay_policy(config),
            trace_kind=trace_kind, initial_q=config.initial_q,
            q_backend=backend,
        )
        rng = seeded_generator(0)
        routine = tea_adl.canonical_routine()
        log = [list(routine.step_ids)] * EPISODES
        reward_fn = CoReDAReward(config, log[0][-1])
        deltas = []
        for iteration, episode in enumerate(log):
            states = episode_states(list(episode))
            learner.begin_episode()
            action, _ = learner.select_action(
                states[0], actions, rng, step=iteration
            )
            for index in range(len(states) - 1):
                state, next_state = states[index], states[index + 1]
                reward = reward_fn.reward(state, action, next_state)
                done = next_state.current == reward_fn.terminal_step_id
                if done:
                    deltas.append(
                        learner.observe(
                            state, action, reward, next_state, None, True
                        )
                    )
                    break
                next_action, _ = learner.select_action(
                    next_state, actions, rng, step=iteration
                )
                deltas.append(
                    learner.observe(
                        state, action, reward, next_state, next_action, False
                    )
                )
                action = next_action
        probe = episode_states(list(routine.step_ids))
        greedy = [learner.greedy_action(s, actions) for s in probe[:-1]]
        return deltas, greedy, learner

    deltas_s, greedy_s, sparse = run("sparse")
    deltas_d, greedy_d, dense = run("dense")
    assert deltas_s == deltas_d
    assert greedy_s == greedy_d
    assert sparse.q.max_abs_difference(dense.q) == 0.0


def test_softmax_selections_identical_across_backends(tea_adl):
    """SoftmaxPolicy consumes the RNG identically on both backends."""
    result = {}
    for backend in ("sparse", "dense"):
        trained = _train(tea_adl, "tdlambda-softmax", backend, 1)
        rng = seeded_generator(99)
        actions = tuple(action_space(tea_adl))
        states = episode_states(list(tea_adl.step_ids))
        policy = SoftmaxPolicy(10.0)
        result[backend] = [
            policy.select(trained.learner.q, state, actions, rng)
            for state in states[:-1]
            for _ in range(5)
        ]
    assert result["sparse"] == result["dense"]


# ---------------------------------------------------------------------------
# Cache key and document byte-identity
# ---------------------------------------------------------------------------


def test_training_document_bytes_identical(tea_adl):
    blobs = {}
    for backend in ("sparse", "dense"):
        result = _train(tea_adl, "tdlambda-replacing", backend, 0)
        blobs[backend] = json.dumps(
            training_document(result, tea_adl.name), sort_keys=True
        ).encode("utf-8")
    assert blobs["sparse"] == blobs["dense"]


def test_cache_key_ignores_backend(tea_adl):
    keys = {
        backend: training_cache_key(
            tea_adl.name,
            list(tea_adl.step_ids),
            PlanningConfig(q_backend=backend),
            0,
            EPISODES,
        )
        for backend in ("sparse", "dense")
    }
    assert keys["sparse"] == keys["dense"]


@pytest.mark.parametrize(
    "writer,reader", [("sparse", "dense"), ("dense", "sparse")]
)
def test_cross_backend_cache_hit(tea_adl, tmp_path, writer, reader):
    """An entry cached by one backend is hit -- and trusted -- by the other."""
    cache = PolicyCache(tmp_path / "cache")
    routine = list(tea_adl.step_ids)
    first = train_routine_cached(
        tea_adl, routine, PlanningConfig(q_backend=writer), 0, EPISODES,
        cache=cache,
    )
    assert not first.cache_hit
    second = train_routine_cached(
        tea_adl, routine, PlanningConfig(q_backend=reader), 0, EPISODES,
        cache=cache,
    )
    assert second.cache_hit
    assert second.document == first.document
    assert second.convergence == first.convergence


# ---------------------------------------------------------------------------
# The batched-draw RNG contract Dyna's planning sweep relies on
# ---------------------------------------------------------------------------


def test_batched_integer_draws_match_sequential():
    """``rng.integers(n, size=k)`` == k scalar draws, same end state.

    ``DynaQLearner._plan`` draws its planning sample indices in one
    batch; this pins the NumPy property that makes the batch consume
    the bit stream exactly like the sparse backend's scalar draws.
    """
    for n in (1, 3, 7, 1000):
        a, b = np.random.default_rng(42), np.random.default_rng(42)
        batched = a.integers(n, size=17).tolist()
        sequential = [int(b.integers(n)) for _ in range(17)]
        assert batched == sequential
        # Both generators are left in the same state.
        assert a.integers(1 << 30) == b.integers(1 << 30)


# ---------------------------------------------------------------------------
# DenseQTable unit semantics (vs the sparse reference)
# ---------------------------------------------------------------------------


def test_dense_matches_sparse_semantics():
    sparse, dense = QTable(initial_value=0.5), DenseQTable(initial_value=0.5)
    actions = ("alpha", "beta", "gamma")
    for table in (sparse, dense):
        assert table.value("s0", "alpha") == 0.5
        table.set("s0", "beta", 2.0)
        table.add("s0", "beta", -0.5)
        table.set("s1", "gamma", 1.0)
    for state in ("s0", "s1", "unseen"):
        assert dense.value(state, "beta") == sparse.value(state, "beta")
        assert dense.best_action(state, actions) == sparse.best_action(
            state, actions
        )
        assert dense.max_value(state, actions) == sparse.max_value(
            state, actions
        )
        assert dense.action_values(state, actions) == sparse.action_values(
            state, actions
        )
        assert dense.action_values_sorted(
            state, actions
        ) == sparse.action_values_sorted(state, actions)
    assert sorted(map(repr, dense.known_pairs())) == sorted(
        map(repr, sparse.known_pairs())
    )
    assert len(dense) == len(sparse) == 2


def test_dense_tie_breaking_is_repr_order():
    """Ties go to the repr-smallest action, exactly like the sparse table."""
    sparse, dense = QTable(), DenseQTable()
    # Interning order deliberately disagrees with repr order.
    actions = ("zeta", "alpha", "mid")
    for table in (sparse, dense):
        for action in actions:
            table.set("s", action, 1.0)
    assert dense.best_action("s", actions) == "alpha"
    assert dense.best_action("s", actions) == sparse.best_action("s", actions)
    assert dense.greedy_policy({"s": list(actions)}) == sparse.greedy_policy(
        {"s": list(actions)}
    )


def test_dense_empty_actions_raise():
    dense = DenseQTable()
    with pytest.raises(ValueError):
        dense.best_action("s", ())
    with pytest.raises(ValueError):
        dense.max_value("s", ())


def test_dense_copy_is_independent():
    dense = DenseQTable()
    dense.set("s", "a", 1.0)
    clone = dense.copy()
    clone.set("s", "a", 5.0)
    clone.set("s2", "b", 7.0)
    assert dense.value("s", "a") == 1.0
    assert dense.value("s2", "b") == 0.0
    assert dense.max_abs_difference(clone) == 7.0


def test_dense_tables_share_one_index():
    """Double-Q style: two tables on one index stay in sync after growth."""
    index = StateActionIndex()
    q_a = DenseQTable(index=index)
    q_b = DenseQTable(index=index)
    # Intern far more states through q_a than the initial capacity.
    for i in range(100):
        q_a.set(f"state-{i}", "go", float(i))
    # q_b must see the enlarged index without having interned anything.
    assert q_b.value("state-99", "go") == 0.0
    q_b.set("state-99", "go", -1.0)
    assert q_b.best_action("state-99", ("go", "stop")) == "stop"
    assert q_a.value("state-99", "go") == 99.0


def test_dense_as_array_tracks_writes():
    dense = DenseQTable()
    dense.set("s", "a", 3.0)
    first = dense.as_array()
    sid, aid = dense.index.state_id("s"), dense.index.action_id("a")
    assert first[sid, aid] == 3.0
    dense.add("s", "a", 1.0)
    assert dense.as_array()[sid, aid] == 4.0


def test_argmax_prober_tracks_updates_and_growth():
    dense = DenseQTable()
    states = ["s0", "s1", "s2"]
    actions = ("a", "b", "c")
    prober = dense.argmax_prober(states, actions)
    assert prober() == [
        dense.best_action(state, actions) for state in states
    ]
    dense.set("s1", "c", 9.0)
    assert prober()[1] == "c"
    # Force a table grow; the prober must revalidate its offsets.
    for i in range(200):
        dense.set(f"grow-{i}", "a", 0.0)
    dense.set("s2", "b", 4.0)
    assert prober() == [
        dense.best_action(state, actions) for state in states
    ]
    with pytest.raises(ValueError):
        dense.argmax_prober(states, ())


def test_make_qtable_selects_backend():
    assert type(make_qtable("dense", 0.0)) is DenseQTable
    assert type(make_qtable("sparse", 0.0)) is QTable
    with pytest.raises(ValueError):
        make_qtable("mystery", 0.0)


# ---------------------------------------------------------------------------
# DenseTraces unit semantics (vs the sparse reference)
# ---------------------------------------------------------------------------


def _reference_traces(kind):
    from repro.rl.traces import EligibilityTraces

    return EligibilityTraces(kind=kind)


@pytest.mark.parametrize(
    "kind", [TraceKind.REPLACING, TraceKind.ACCUMULATING]
)
def test_dense_traces_match_sparse(kind):
    dense_q = DenseQTable()
    dense = make_traces(dense_q, kind)
    sparse = _reference_traces(kind)
    assert type(dense) is DenseTraces
    for traces in (dense, sparse):
        traces.visit("s0", "a")
        traces.visit("s0", "a")  # replacing pins to 1, accumulating sums
        traces.visit("s1", "b")
        traces.decay(0.5)
    assert dense.get("s0", "a") == sparse.get("s0", "a")
    assert dense.get("s1", "b") == sparse.get("s1", "b")
    assert dict(dense.items()) == dict(sparse.items())
    # Cutoff: decay far enough and entries are dropped on both.
    for _ in range(40):
        dense.decay(0.5)
        sparse.decay(0.5)
    assert len(dense) == len(sparse) == 0


def test_dense_traces_apply_update_and_snapshot():
    q = DenseQTable()
    traces = make_traces(q, TraceKind.REPLACING)
    traces.visit("s0", "a")
    traces.decay(0.5)
    traces.visit("s1", "b")
    traces.apply_update(q, 2.0)
    assert q.value("s0", "a") == 1.0  # 2.0 * 0.5
    assert q.value("s1", "b") == 2.0
    # items() is a snapshot: mutating mid-iteration must be safe.
    for (state, action), _ in traces.items():
        traces.visit(state, action)
    traces.reset()
    assert len(traces) == 0 and list(traces.items()) == []
