"""Unit tests for the ADL / step / tool data model."""

import pytest

from repro.core.adl import (
    ADL,
    ADLStep,
    IDLE_STEP_ID,
    Routine,
    SensorType,
    Tool,
)
from repro.core.errors import RoutineError, UnknownStepError, UnknownToolError


def make_tools(n=4, base=1):
    return [
        Tool(base + i, f"tool-{base + i}", SensorType.ACCELEROMETER)
        for i in range(n)
    ]


def make_adl(n=4):
    return ADL("test-adl", [ADLStep(f"step-{t.tool_id}", t) for t in make_tools(n)])


class TestTool:
    def test_positive_id_required(self):
        with pytest.raises(ValueError):
            Tool(0, "bad", SensorType.PRESSURE)
        with pytest.raises(ValueError):
            Tool(-3, "bad", SensorType.PRESSURE)

    def test_step_id_equals_tool_id(self):
        tool = Tool(9, "cup", SensorType.ACCELEROMETER)
        step = ADLStep("drink", tool)
        assert step.step_id == 9


class TestADL:
    def test_requires_steps(self):
        with pytest.raises(RoutineError):
            ADL("empty", [])

    def test_duplicate_step_ids_rejected(self):
        tool = Tool(1, "a", SensorType.ACCELEROMETER)
        with pytest.raises(RoutineError):
            ADL("dup", [ADLStep("x", tool), ADLStep("y", tool)])

    def test_lookup_by_step_id(self):
        adl = make_adl()
        assert adl.step(2).name == "step-2"
        assert adl.tool(3).name == "tool-3"

    def test_unknown_step_raises(self):
        adl = make_adl()
        with pytest.raises(UnknownStepError):
            adl.step(99)

    def test_tool_by_name(self):
        adl = make_adl()
        assert adl.tool_by_name("tool-1").tool_id == 1
        with pytest.raises(UnknownToolError):
            adl.tool_by_name("missing")

    def test_terminal_and_ids(self):
        adl = make_adl()
        assert adl.step_ids == [1, 2, 3, 4]
        assert adl.terminal_step_id == 4
        assert len(adl) == 4

    def test_has_step(self):
        adl = make_adl()
        assert adl.has_step(1)
        assert not adl.has_step(IDLE_STEP_ID)

    def test_canonical_routine_matches_order(self):
        adl = make_adl()
        assert list(adl.canonical_routine().step_ids) == [1, 2, 3, 4]


class TestRoutine:
    def test_valid_permutation(self):
        adl = make_adl()
        routine = Routine(adl, [1, 3, 2, 4])
        assert routine.first_step_id == 1
        assert routine.terminal_step_id == 4

    def test_empty_rejected(self):
        with pytest.raises(RoutineError):
            Routine(make_adl(), [])

    def test_unknown_step_rejected(self):
        with pytest.raises(RoutineError):
            Routine(make_adl(), [1, 99])

    def test_repeat_rejected(self):
        with pytest.raises(RoutineError):
            Routine(make_adl(), [1, 2, 2, 4])

    def test_next_step(self):
        routine = Routine(make_adl(), [1, 3, 2, 4])
        assert routine.next_step_id(1) == 3
        assert routine.next_step_id(3) == 2
        assert routine.next_step_id(4) is None

    def test_next_step_outside_routine_raises(self):
        routine = Routine(make_adl(), [1, 2])
        with pytest.raises(UnknownStepError):
            routine.next_step_id(3)

    def test_position_and_contains(self):
        routine = Routine(make_adl(), [2, 1, 4])
        assert routine.position(1) == 1
        assert routine.contains(4)
        assert not routine.contains(3)
        with pytest.raises(UnknownStepError):
            routine.position(3)

    def test_equality_and_hash(self):
        adl = make_adl()
        a = Routine(adl, [1, 2, 3, 4])
        b = Routine(adl, [1, 2, 3, 4])
        c = Routine(adl, [1, 3, 2, 4])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_steps_in_routine_order(self):
        routine = Routine(make_adl(), [3, 1])
        assert [s.step_id for s in routine.steps()] == [3, 1]
