"""Unit tests for the generic timeline renderer."""

import pytest

from repro.evalx.timeline import render_timeline, timeline_rows
from repro.sim.tracing import TraceRecorder


@pytest.fixture
def trace():
    trace = TraceRecorder()
    trace.emit(1.0, "sensing.step", step_id=1, previous=0)
    trace.emit(5.0, "resident.error", kind="wrong_tool", expected=2,
               wrong_tool=4)
    trace.emit(6.0, "reminder.prompt", tool_id=2, level="minimal",
               reason="WRONG_TOOL", attempt=1, wrong_tool_id=4)
    trace.emit(6.0, "node.led", uid=2, color="green", blinks=3)
    trace.emit(9.0, "sensing.step", step_id=2, previous=1)
    trace.emit(9.0, "reminder.praise", step_id=2)
    trace.emit(30.0, "sensing.step", step_id=0, previous=2)
    trace.emit(40.0, "reminder.gave_up", tool_id=3, attempts=6)
    trace.emit(50.0, "planning.completed", adl="tea-making")
    trace.emit(60.0, "irrelevant.category", x=1)
    return trace


class TestRows:
    def test_rows_in_order_and_filtered(self, trace, tea_adl):
        rows = timeline_rows(trace, tea_adl)
        assert [time for time, *_ in rows] == sorted(
            time for time, *_ in rows
        )
        # The irrelevant category is excluded.
        assert len(rows) == 9

    def test_window_selection(self, trace, tea_adl):
        rows = timeline_rows(trace, tea_adl, start=5.0, end=9.0)
        assert all(5.0 <= time <= 9.0 for time, *_ in rows)
        assert len(rows) == 5

    def test_custom_categories(self, trace, tea_adl):
        rows = timeline_rows(trace, tea_adl, categories=("reminder.praise",))
        assert len(rows) == 1
        assert rows[0][1] == "praise"


class TestDescriptions:
    def test_step_names_resolved(self, trace, tea_adl):
        text = render_timeline(trace, tea_adl)
        assert "Put tea-leaf into kettle" in text
        assert "idle (nothing used for a while)" in text

    def test_prompt_includes_misused_tool(self, trace, tea_adl):
        text = render_timeline(trace, tea_adl)
        assert "misusing tea-cup" in text

    def test_alert_line(self, trace, tea_adl):
        text = render_timeline(trace, tea_adl)
        assert "caregiver needed" in text

    def test_resident_error_line(self, trace, tea_adl):
        text = render_timeline(trace, tea_adl)
        assert "wrong_tool before electronic-pot (grabbed tea-cup)" in text

    def test_unknown_tool_rendered_gracefully(self, tea_adl):
        trace = TraceRecorder()
        trace.emit(1.0, "node.led", uid=99, color="red", blinks=1)
        text = render_timeline(trace, tea_adl)
        assert "tool#99" in text

    def test_empty_trace_renders_header_only(self, tea_adl):
        text = render_timeline(TraceRecorder(), tea_adl)
        assert "Time (s)" in text


class TestEndToEnd:
    def test_timeline_of_live_episode(self, tea_definition):
        from repro.adls.tea_making import POT, TEACUP
        from repro.core.config import CoReDAConfig
        from repro.core.system import CoReDA
        from repro.resident.compliance import ComplianceModel
        from repro.resident.dementia import ErrorKind, ScriptedError

        system = CoReDA.build(tea_definition, CoReDAConfig(seed=2))
        system.train_offline()
        resident = system.create_resident(
            compliance=ComplianceModel.perfect(),
            error_script={2: ScriptedError(ErrorKind.STALL)},
            handling_overrides={POT.tool_id: 6.0, TEACUP.tool_id: 5.0},
        )
        system.run_episode(resident)
        text = render_timeline(system.trace, tea_definition.adl)
        assert "prompt[" in text
        assert "Excellent!" in text
        assert "finished" in text
