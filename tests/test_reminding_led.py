"""Unit tests for the LED controller (goes through the radio)."""

import pytest

from repro.core.adl import ReminderLevel
from repro.core.bus import EventBus
from repro.core.config import RadioConfig, RemindingConfig, SensingConfig
from repro.core.events import LEDCommandEvent
from repro.reminding.led import LedController
from repro.sensors.network import SensorNetwork
from repro.sim.random import RandomStreams


@pytest.fixture
def setup(sim, tea_definition):
    network = SensorNetwork(
        sim=sim,
        adl=tea_definition.adl,
        sensing_config=SensingConfig(),
        radio_config=RadioConfig(loss_probability=0.0),
        streams=RandomStreams(0),
    )
    bus = EventBus()
    commands = []
    bus.subscribe(LEDCommandEvent, commands.append)
    controller = LedController(
        sim, network.base_station, RemindingConfig(), bus=bus
    )
    return sim, network, controller, commands


class TestBlinkCounts:
    def test_minimal_fewer_than_specific(self, setup):
        _, _, controller, _ = setup
        assert controller.blinks_for(ReminderLevel.MINIMAL) < controller.blinks_for(
            ReminderLevel.SPECIFIC
        )


class TestCommands:
    def test_target_green(self, setup):
        sim, network, controller, commands = setup
        controller.indicate_target(2, ReminderLevel.MINIMAL)
        sim.run()
        assert network.node(2).leds["green"].total_blinks == 3
        assert commands[0].color == "green"

    def test_wrong_use_red(self, setup):
        sim, network, controller, commands = setup
        controller.indicate_wrong_use(4, ReminderLevel.SPECIFIC)
        sim.run()
        assert network.node(4).leds["red"].total_blinks == 8
        assert commands[0].color == "red"

    def test_commands_counted(self, setup):
        sim, network, controller, commands = setup
        controller.indicate_target(1, ReminderLevel.MINIMAL)
        controller.indicate_wrong_use(2, ReminderLevel.MINIMAL)
        assert controller.commands_sent == 2
