"""Unit tests for the drifting real-time clock."""

import pytest

from repro.sensors.clock import RealTimeClock


class TestDrift:
    def test_zero_drift_tracks_wall_time(self):
        clock = RealTimeClock(drift_ppm=0.0)
        assert clock.local_time(1000.0) == 1000.0

    def test_positive_drift_runs_fast(self):
        clock = RealTimeClock(drift_ppm=100.0)
        assert clock.local_time(10_000.0) == pytest.approx(10_001.0)
        assert clock.skew_at(10_000.0) == pytest.approx(1.0)

    def test_skew_grows_linearly(self):
        clock = RealTimeClock(drift_ppm=50.0)
        assert clock.skew_at(2000.0) == pytest.approx(2 * clock.skew_at(1000.0))

    def test_monotonic(self):
        clock = RealTimeClock(drift_ppm=20.0)
        times = [clock.local_time(t) for t in range(0, 1000, 10)]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_resync_zeroes_skew(self):
        clock = RealTimeClock(drift_ppm=500.0, offset=2.0)
        clock.resync(1_000.0)
        assert clock.skew_at(1_000.0) == pytest.approx(0.0)
        # Drift resumes accumulating afterwards.
        assert clock.skew_at(2_000.0) == pytest.approx(0.5)
