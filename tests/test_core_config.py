"""Unit tests for configuration validation and profiles."""

import pytest

from repro.core.config import (
    CoReDAConfig,
    PlanningConfig,
    RadioConfig,
    RemindingConfig,
    SensingConfig,
)
from repro.core.errors import ConfigurationError


class TestSensingConfig:
    def test_paper_defaults(self):
        config = SensingConfig()
        assert config.sampling_hz == 10.0
        assert config.threshold_count == 3
        assert config.window_size == 10
        assert config.idle_timeout == 30.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sampling_hz": 0},
            {"threshold_count": 0},
            {"threshold_count": 11},
            {"idle_timeout": 0},
            {"refractory_period": -1},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SensingConfig(**kwargs)


class TestRadioConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [{"loss_probability": 1.0}, {"loss_probability": -0.1}, {"latency": -1},
         {"max_retries": -1}],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RadioConfig(**kwargs)


class TestPlanningConfig:
    def test_paper_rewards(self):
        config = PlanningConfig()
        assert config.terminal_reward == 1000.0
        assert config.minimal_reward == 100.0
        assert config.specific_reward == 50.0

    def test_minimal_must_dominate_specific(self):
        with pytest.raises(ConfigurationError):
            PlanningConfig(minimal_reward=40.0, specific_reward=50.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"learning_rate": 0.0},
            {"learning_rate": 1.5},
            {"discount": 1.0},
            {"trace_decay": 1.1},
            {"epsilon": -0.1},
            {"convergence_criterion": 0.0},
            {"convergence_patience": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            PlanningConfig(**kwargs)


class TestRemindingConfig:
    def test_minimal_blinks_fewer_than_specific(self):
        with pytest.raises(ConfigurationError):
            RemindingConfig(minimal_blinks=8, specific_blinks=3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"stall_timeout": 0},
            {"minimal_blinks": 0},
            {"escalate_after": 0},
            {"max_reminders_per_step": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RemindingConfig(**kwargs)


class TestCoReDAConfig:
    def test_with_seed_copies(self):
        config = CoReDAConfig(seed=1)
        other = config.with_seed(9)
        assert other.seed == 9
        assert config.seed == 1
        assert other.planning == config.planning

    def test_elderly_friendly_profile(self):
        config = CoReDAConfig.elderly_friendly("Mrs. Sato")
        assert config.reminding.escalate_after == 1
        assert config.reminding.stall_timeout > CoReDAConfig().reminding.stall_timeout
        assert config.reminding.user_title == "Mrs. Sato"

    def test_frozen(self):
        config = CoReDAConfig()
        with pytest.raises(AttributeError):
            config.seed = 5
