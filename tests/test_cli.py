"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "tea-making"])
        assert args.episodes == 120
        assert args.seed == 0
        assert args.routine is None

    def test_report_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.fast is False
        assert args.no_ablations is False
        assert args.jobs == 1
        assert args.cache is None
        assert args.timing is False

    def test_report_accepts_runner_flags(self):
        args = build_parser().parse_args(
            ["report", "--fast", "--no-ablations", "--jobs", "4",
             "--cache", "/tmp/cache", "--timing"]
        )
        assert args.fast is True
        assert args.no_ablations is True
        assert args.jobs == 4
        assert args.cache == "/tmp/cache"
        assert args.timing is True


class TestListAdls:
    def test_lists_all_five(self, capsys):
        assert main(["list-adls"]) == 0
        out = capsys.readouterr().out
        for name in ("tea-making", "tooth-brushing", "hand-washing",
                     "dressing", "coffee-making"):
            assert name in out


class TestTrain:
    def test_train_prints_convergence(self, capsys):
        assert main(["train", "tea-making"]) == 0
        out = capsys.readouterr().out
        assert "95% criterion: iteration" in out
        assert "final greedy accuracy: 100%" in out

    def test_train_custom_routine(self, capsys):
        assert main(["train", "tea-making", "--routine", "1,3,2,4"]) == 0
        assert "[1, 3, 2, 4]" in capsys.readouterr().out

    def test_train_saves_policy(self, tmp_path, capsys):
        path = tmp_path / "policy.json"
        assert main(["train", "tea-making", "--save", str(path)]) == 0
        assert path.exists()
        from repro.adls.tea_making import make_tea_making
        from repro.planning.store import load_predictor

        predictor = load_predictor(path, make_tea_making())
        assert predictor.predict_next_tool(0, 1) == 2

    def test_train_plot(self, capsys):
        assert main(["train", "tea-making", "--plot"]) == 0
        assert "*" in capsys.readouterr().out

    def test_unknown_adl_raises(self):
        from repro.core.errors import UnknownADLError

        with pytest.raises(UnknownADLError):
            main(["train", "cooking"])

    def test_routine_with_non_integer_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["train", "tea-making", "--routine", "1,x,3"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "'x' is not a StepID" in err
        assert "Traceback" not in err

    def test_routine_with_unknown_step_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["train", "tea-making", "--routine", "1,99,3"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "no step 99 in tea-making" in err
        assert "StepIDs: 1, 2, 3, 4" in err


class TestSimulate:
    def test_simulate_prints_report(self, capsys):
        assert main(
            ["simulate", "tea-making", "--episodes", "2", "--severity", "0.3"]
        ) == 0
        out = capsys.readouterr().out
        assert "ran 2 episodes" in out
        assert "Caregiver report — tea-making" in out

    def test_simulate_with_adaptation(self, capsys):
        assert main(
            ["simulate", "tea-making", "--episodes", "1", "--adapt"]
        ) == 0


class TestReport:
    def test_no_ablations_skips_sweeps_and_writes_utf8(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        assert main(
            ["report", "--fast", "--no-ablations", "--output", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "sweep" not in out
        assert "ablation" not in out
        assert path.read_bytes().decode("utf-8") == out


class TestScenario:
    def test_scenario_passes(self, capsys):
        assert main(["scenario"]) == 0
        out = capsys.readouterr().out
        assert "structure check: PASS" in out


class TestConfigFile:
    def test_train_with_config_file(self, tmp_path, capsys):
        from repro.core.config import CoReDAConfig
        from repro.core.config_io import save_config

        path = tmp_path / "coreda.json"
        save_config(CoReDAConfig(), path)
        assert main(["train", "tea-making", "--config", str(path)]) == 0
        assert "final greedy accuracy" in capsys.readouterr().out

    def test_seed_flag_overrides_config_seed(self, tmp_path, capsys):
        import json

        path = tmp_path / "coreda.json"
        path.write_text(json.dumps({"seed": 5}))
        assert main(
            ["train", "tea-making", "--config", str(path), "--seed", "9"]
        ) == 0

    def test_simulate_timeline_flag(self, capsys):
        assert main(
            ["simulate", "tea-making", "--episodes", "1", "--timeline",
             "--severity", "0.0"]
        ) == 0
        out = capsys.readouterr().out
        assert "Event timeline" in out
        assert "Put tea-leaf into kettle" in out
