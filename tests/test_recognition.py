"""Unit tests for the HMM recognition package."""

import numpy as np
import pytest

from repro.core.adl import Routine
from repro.recognition.hmm import DiscreteHMM
from repro.recognition.recognizer import ActivityRecognizer
from repro.recognition.repair import EpisodeRepairer


def two_state_hmm(stay=0.7, correct=0.9):
    prior = np.array([1.0, 0.0])
    transition = np.array([[stay, 1 - stay], [0.0, 1.0]])
    emission = np.array([[correct, 1 - correct], [1 - correct, correct]])
    return DiscreteHMM(prior, transition, emission)


class TestDiscreteHMM:
    def test_row_sums_validated(self):
        with pytest.raises(ValueError):
            DiscreteHMM(
                np.array([0.5, 0.4]),
                np.eye(2),
                np.array([[0.5, 0.5], [0.5, 0.5]]),
            )

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            DiscreteHMM(
                np.array([1.0]),
                np.eye(2),
                np.array([[1.0]]),
            )

    def test_log_likelihood_of_likely_sequence_higher(self):
        hmm = two_state_hmm()
        likely = hmm.log_likelihood([0, 0, 1, 1])
        unlikely = hmm.log_likelihood([1, 1, 0, 0])
        assert likely > unlikely

    def test_log_likelihood_empty_is_zero(self):
        assert two_state_hmm().log_likelihood([]) == 0.0

    def test_viterbi_decodes_obvious_path(self):
        hmm = two_state_hmm(correct=0.95)
        path, score = hmm.viterbi([0, 0, 1, 1])
        assert path == [0, 0, 1, 1]
        assert score < 0.0

    def test_viterbi_empty(self):
        assert two_state_hmm().viterbi([]) == ([], 0.0)

    def test_filter_is_distribution(self):
        hmm = two_state_hmm()
        probabilities = hmm.filter([0, 1, 1])
        assert probabilities.shape == (2,)
        assert probabilities.sum() == pytest.approx(1.0)
        assert probabilities[1] > probabilities[0]

    def test_out_of_range_symbol_rejected(self):
        with pytest.raises(ValueError):
            two_state_hmm().log_likelihood([0, 5])

    def test_single_observation(self):
        hmm = two_state_hmm()
        path, _ = hmm.viterbi([0])
        assert path == [0]


class TestEpisodeRepairer:
    @pytest.fixture
    def repairer(self, tea_adl):
        return EpisodeRepairer(tea_adl.canonical_routine())

    def test_clean_episode_unchanged(self, repairer):
        assert repairer.repair([1, 2, 3, 4]) == [1, 2, 3, 4]

    def test_single_gap_filled(self, repairer):
        assert repairer.repair([1, 3, 4]) == [1, 2, 3, 4]

    def test_double_gap_filled(self, repairer):
        assert repairer.repair([1, 4]) == [1, 2, 3, 4]

    def test_missing_first_step_restored(self, repairer):
        assert repairer.repair([2, 3, 4]) == [1, 2, 3, 4]

    def test_cut_short_episode_not_extended(self, repairer):
        # A run that genuinely stopped after step 2 must not be
        # hallucinated to completion.
        assert repairer.repair([1, 2]) == [1, 2]

    def test_empty_stream_repairs_to_full_routine(self, repairer):
        assert repairer.repair([]) == [1, 2, 3, 4]

    def test_foreign_tools_dropped(self, repairer):
        assert repairer.repair([1, 99, 3, 4]) == [1, 2, 3, 4]

    def test_repair_all(self, repairer):
        repaired = repairer.repair_all([[1, 3, 4], [1, 2, 3, 4]])
        assert repaired == [[1, 2, 3, 4], [1, 2, 3, 4]]

    def test_personalized_routine_respected(self, tea_adl):
        repairer = EpisodeRepairer(Routine(tea_adl, [1, 3, 2, 4]))
        assert repairer.repair([1, 2, 4]) == [1, 3, 2, 4]

    def test_parameter_validation(self, tea_adl):
        with pytest.raises(ValueError):
            EpisodeRepairer(tea_adl.canonical_routine(), miss_probability=1.0)

    def test_improves_training_on_gappy_logs(self, tea_adl):
        from repro.planning.trainer import RoutineTrainer
        from repro.resident.routines import noisy_episodes

        routine = tea_adl.canonical_routine()
        rng = np.random.default_rng(100)
        noisy = noisy_episodes(routine, 120, rng, miss_probability=0.2)
        repaired = EpisodeRepairer(routine, miss_probability=0.2).repair_all(
            noisy
        )

        def final_accuracy(log, seed=0):
            trainer = RoutineTrainer(tea_adl, rng=np.random.default_rng(seed))
            return trainer.train(log, routine=routine).curve.greedy_accuracy[-1]

        assert final_accuracy(repaired) == 1.0
        assert final_accuracy(repaired) > final_accuracy(noisy)


class TestActivityRecognizer:
    @pytest.fixture
    def recognizer(self, registry):
        return ActivityRecognizer(
            [registry.get(name).adl for name in registry.names()]
        )

    def test_classifies_clean_streams(self, recognizer, registry):
        for name in registry.names():
            adl = registry.get(name).adl
            assert recognizer.classify(adl.step_ids) == name

    def test_classifies_gappy_streams(self, recognizer):
        assert recognizer.classify([1, 4]) == "tea-making"
        assert recognizer.classify([11, 14]) == "tooth-brushing"

    def test_tolerates_substitution_noise(self, recognizer):
        # One foreign detection in a tea stream.
        assert recognizer.classify([1, 12, 3, 4]) == "tea-making"

    def test_posterior_sums_to_one(self, recognizer):
        posterior = recognizer.posterior([1, 2, 3])
        assert sum(posterior.values()) == pytest.approx(1.0)

    def test_empty_stream_uniform(self, recognizer, registry):
        posterior = recognizer.posterior([])
        assert all(
            value == pytest.approx(1.0 / len(registry))
            for value in posterior.values()
        )

    def test_needs_candidates(self):
        with pytest.raises(ValueError):
            ActivityRecognizer([])
