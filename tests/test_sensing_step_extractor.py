"""Unit tests for StepID extraction."""

import pytest

from repro.core.adl import IDLE_STEP_ID
from repro.sensing.step_extractor import StepExtractor


@pytest.fixture
def extractor(sim):
    events = []
    extractor = StepExtractor(sim, idle_timeout=30.0, on_step=events.append)
    extractor.test_events = events
    return extractor


class TestTransitions:
    def test_first_tool_transitions_from_idle(self, sim, extractor):
        event = extractor.observe_tool(3)
        assert event.step_id == 3
        assert event.previous_step_id == IDLE_STEP_ID
        assert extractor.current_step_id == 3

    def test_repeat_same_tool_no_transition(self, sim, extractor):
        extractor.observe_tool(3)
        assert extractor.observe_tool(3) is None
        assert extractor.transitions == 1

    def test_new_tool_transitions(self, sim, extractor):
        extractor.observe_tool(3)
        event = extractor.observe_tool(4)
        assert (event.previous_step_id, event.step_id) == (3, 4)

    def test_step_log_accumulates(self, sim, extractor):
        for tool in (1, 1, 2, 3):
            extractor.observe_tool(tool)
        assert [e.step_id for e in extractor.step_log] == [1, 2, 3]


class TestIdleTimer:
    def test_idle_emitted_after_timeout(self, sim, extractor):
        extractor.observe_tool(3)
        sim.run_until(31.0)
        assert extractor.current_step_id == IDLE_STEP_ID
        assert [e.step_id for e in extractor.test_events] == [3, IDLE_STEP_ID]

    def test_activity_rearms_timer(self, sim, extractor):
        extractor.observe_tool(3)
        sim.run_until(20.0)
        extractor.observe_tool(3)  # same tool still resets the clock
        sim.run_until(40.0)
        assert extractor.current_step_id == 3
        sim.run_until(51.0)
        assert extractor.current_step_id == IDLE_STEP_ID

    def test_no_duplicate_idle_events(self, sim, extractor):
        extractor.observe_tool(3)
        sim.run_until(100.0)
        idles = [e for e in extractor.test_events if e.step_id == IDLE_STEP_ID]
        assert len(idles) == 1

    def test_usage_after_idle_transitions_from_idle(self, sim, extractor):
        extractor.observe_tool(3)
        sim.run_until(31.0)
        event = extractor.observe_tool(4)
        assert event.previous_step_id == IDLE_STEP_ID

    def test_idle_event_time_is_exact(self, sim, extractor):
        extractor.observe_tool(3)
        sim.run()
        idle = extractor.test_events[-1]
        assert idle.time == pytest.approx(30.0)


class TestReset:
    def test_reset_back_to_idle_without_event(self, sim, extractor):
        extractor.observe_tool(3)
        extractor.reset()
        assert extractor.current_step_id == IDLE_STEP_ID
        # No idle event was emitted by the reset itself.
        assert [e.step_id for e in extractor.test_events] == [3]

    def test_reset_disarms_timer(self, sim, extractor):
        extractor.observe_tool(3)
        extractor.reset()
        sim.run_until(100.0)
        assert [e.step_id for e in extractor.test_events] == [3]


class TestValidation:
    def test_positive_timeout_required(self, sim):
        with pytest.raises(ValueError):
            StepExtractor(sim, idle_timeout=0.0, on_step=lambda e: None)
