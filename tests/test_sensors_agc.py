"""Unit tests for adaptive threshold control."""

import numpy as np
import pytest

from repro.core.adl import SensorType, Tool
from repro.core.config import RadioConfig, SensingConfig
from repro.sensors.agc import QuantileTracker, ThresholdController
from repro.sensors.pavenet import PavenetNode
from repro.sensors.radio import BASE_STATION_UID, RadioMedium
from repro.sensors.signals import SignalProfile, SignalSource


class TestQuantileTracker:
    def test_converges_to_quantile_of_distribution(self):
        rng = np.random.default_rng(0)
        tracker = QuantileTracker(quantile=0.9, step=0.01, initial=0.0)
        samples = rng.uniform(0.0, 1.0, size=20_000)
        for sample in samples:
            tracker.observe(float(sample))
        assert tracker.estimate == pytest.approx(0.9, abs=0.05)

    def test_tracks_shift(self):
        tracker = QuantileTracker(quantile=0.5, step=0.01, initial=0.0)
        for _ in range(2000):
            tracker.observe(1.0)
        assert tracker.estimate == pytest.approx(1.0, abs=0.15)
        for _ in range(4000):
            tracker.observe(0.2)
        assert tracker.estimate == pytest.approx(0.2, abs=0.15)

    def test_never_negative(self):
        tracker = QuantileTracker(quantile=0.1, step=0.5, initial=0.1)
        for _ in range(100):
            tracker.observe(0.0)
        assert tracker.estimate >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantileTracker(quantile=1.0)
        with pytest.raises(ValueError):
            QuantileTracker(step=0.0)


class TestThresholdController:
    def test_threshold_clamped(self):
        controller = ThresholdController(minimum=0.3, maximum=2.0)
        assert controller.threshold_for(0.01) == 0.3
        assert controller.threshold_for(100.0) == 2.0

    def test_noise_only_stream_settles_near_paper_threshold(self):
        rng = np.random.default_rng(1)
        source = SignalSource(SignalProfile(), rng)
        controller = ThresholdController(initial_noise=1.5)  # mis-set high
        for t in range(20_000):
            controller.observe(source.read(t * 0.1))
        # Noise sd = 0.18 -> q99 ~= 0.46; margin 2 -> threshold ~0.93,
        # right in the shipped default's (1.0) neighbourhood.
        assert 0.6 <= controller.threshold <= 1.3

    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdController(margin=1.0)
        with pytest.raises(ValueError):
            ThresholdController(minimum=2.0, maximum=1.0)


class TestNodeIntegration:
    def _node(self, sim, threshold, agc):
        radio = RadioMedium(
            sim, RadioConfig(loss_probability=0.0), np.random.default_rng(0)
        )
        tool = Tool(7, "cup", SensorType.ACCELEROMETER)
        source = SignalSource(
            SignalProfile(burst_probability=0.6), np.random.default_rng(1)
        )
        received = []
        radio.attach(BASE_STATION_UID, received.append)
        node = PavenetNode(
            sim=sim,
            tool=tool,
            source=source,
            radio=radio,
            config=SensingConfig(usage_threshold=threshold),
            agc=agc,
        )
        return node, source, received

    def test_miscalibrated_node_recovers_with_agc(self, sim):
        # Deployed with threshold 4.0: bursts (~2.0) are invisible.
        node, source, received = self._node(
            sim, threshold=4.0, agc=ThresholdController(initial_noise=2.0)
        )
        node.start()
        # Let the controller settle on the noise floor (the downward
        # drift is step*(1-q) per sample: ~13 simulated minutes).
        sim.run_until(1200.0)
        assert node.detector.threshold < 1.5
        # ...then a handling is detected again.
        source.begin_use(sim.now, duration=6.0)
        sim.run_until(sim.now + 8.0)
        assert received

    def test_miscalibrated_node_without_agc_stays_blind(self, sim):
        node, source, received = self._node(sim, threshold=4.0, agc=None)
        node.start()
        sim.run_until(600.0)
        source.begin_use(sim.now, duration=6.0)
        sim.run_until(sim.now + 8.0)
        assert received == []

    def test_agc_does_not_cause_idle_false_triggers(self, sim):
        node, source, received = self._node(
            sim, threshold=1.0, agc=ThresholdController()
        )
        node.start()
        sim.run_until(1200.0)  # 20 idle minutes
        assert received == []
