"""Unit tests for the baseline guidance systems."""

import pytest

from repro.baselines.fixed_sequence import FixedSequenceReminder
from repro.baselines.mdp_planner import MdpPlannerBaseline, build_guidance_mdp
from repro.baselines.ngram import NGramPredictor
from repro.core.adl import IDLE_STEP_ID, ReminderLevel, Routine


class TestFixedSequence:
    def test_follows_canonical_plan(self, tea_adl):
        baseline = FixedSequenceReminder(tea_adl)
        assert baseline.predict_next_tool(0, 1) == 2
        assert baseline.predict_next_tool(1, 2) == 3

    def test_terminal_has_no_next(self, tea_adl):
        baseline = FixedSequenceReminder(tea_adl)
        assert baseline.predict_next_tool(3, 4) is None

    def test_ignores_personalization(self, tea_adl):
        # A user whose routine is 1,3,2,4 still gets canonical advice.
        baseline = FixedSequenceReminder(tea_adl)
        assert baseline.predict_next_tool(1, 3) == 4  # user actually does 2

    def test_custom_plan(self, tea_adl):
        plan = Routine(tea_adl, [1, 3, 2, 4])
        baseline = FixedSequenceReminder(tea_adl, plan=plan)
        assert baseline.predict_next_tool(1, 3) == 2

    def test_prompt_action_always_specific(self, tea_adl):
        baseline = FixedSequenceReminder(tea_adl)
        assert baseline.predict(0, 1).level is ReminderLevel.SPECIFIC
        assert baseline.predict(3, 4) is None


class TestNGram:
    def test_bigram_learns_successors(self):
        model = NGramPredictor(order=1).fit([[1, 2, 3, 4]] * 10)
        assert model.predict_next_tool(0, 1) == 2
        assert model.predict_next_tool(2, 3) == 4

    def test_unseen_context_returns_none(self):
        model = NGramPredictor(order=2).fit([[1, 2, 3]])
        assert model.predict_next_tool(9, 9) is None

    def test_order2_disambiguates_by_history(self):
        # After step 2 the next step depends on how 2 was reached:
        # 1,2 -> 3 but 3,2 -> 4 (two interleaved routines).
        episodes = [[1, 2, 3]] * 5 + [[3, 2, 4]] * 5
        order1 = NGramPredictor(order=1).fit(episodes)
        order2 = NGramPredictor(order=2).fit(episodes)
        assert order2.predict_next_tool(1, 2) == 3
        assert order2.predict_next_tool(3, 2) == 4
        # Order 1 must give the same answer for both contexts.
        assert order1.predict_next_tool(1, 2) == order1.predict_next_tool(3, 2)

    def test_majority_wins(self):
        episodes = [[1, 2]] * 7 + [[1, 3]] * 3
        model = NGramPredictor(order=1).fit(episodes)
        assert model.predict_next_tool(IDLE_STEP_ID, 1) == 2

    def test_distribution_normalized(self):
        model = NGramPredictor(order=1).fit([[1, 2]] * 3 + [[1, 3]])
        distribution = model.distribution(0, 1)
        assert sum(distribution.values()) == pytest.approx(1.0)
        assert distribution[2] == pytest.approx(0.75)

    def test_distribution_empty_for_unseen(self):
        assert NGramPredictor().distribution(0, 99) == {}

    def test_order_validation(self):
        with pytest.raises(ValueError):
            NGramPredictor(order=3)


class TestMdpPlanner:
    def test_plans_known_routine(self, tea_adl):
        planner = MdpPlannerBaseline(tea_adl.canonical_routine())
        assert planner.predict_next_tool(0, 1) == 2
        assert planner.predict_next_tool(1, 2) == 3
        assert planner.predict_next_tool(2, 3) == 4

    def test_unmodelled_state_returns_none(self, tea_adl):
        planner = MdpPlannerBaseline(tea_adl.canonical_routine())
        assert planner.predict_next_tool(2, 1) is None

    def test_plans_personalized_routine_if_given_model(self, tea_adl):
        routine = Routine(tea_adl, [1, 3, 2, 4])
        planner = MdpPlannerBaseline(routine)
        assert planner.predict_next_tool(1, 3) == 2

    def test_guidance_mdp_is_valid(self, tea_adl):
        mdp = build_guidance_mdp(tea_adl.canonical_routine(), compliance=0.8)
        mdp.validate()

    def test_full_compliance_has_no_self_loops_on_correct(self, tea_adl):
        mdp = build_guidance_mdp(tea_adl.canonical_routine(), compliance=1.0)
        outcomes = mdp.outcomes((0, 1), 2)
        assert len(outcomes) == 1
        assert outcomes[0].next_state == (1, 2)

    def test_compliance_bounds(self, tea_adl):
        with pytest.raises(ValueError):
            build_guidance_mdp(tea_adl.canonical_routine(), compliance=0.0)
