"""Unit tests for the planning action space."""

from repro.core.adl import ReminderLevel
from repro.planning.action import PromptAction, action_space


class TestPromptAction:
    def test_fields(self):
        action = PromptAction(3, ReminderLevel.MINIMAL)
        assert action.tool_id == 3
        assert action.level is ReminderLevel.MINIMAL

    def test_repr_paper_notation(self):
        assert repr(PromptAction(2, ReminderLevel.SPECIFIC)) == "<2,specific>"

    def test_minimal_sorts_before_specific(self):
        # The deterministic argmax tie-break relies on this: under
        # equal Q the MINIMAL variant of a tool wins.
        minimal = PromptAction(2, ReminderLevel.MINIMAL)
        specific = PromptAction(2, ReminderLevel.SPECIFIC)
        assert sorted([specific, minimal], key=repr)[0] is minimal


class TestActionSpace:
    def test_two_actions_per_tool(self, tea_adl):
        actions = action_space(tea_adl)
        assert len(actions) == 2 * len(tea_adl)

    def test_covers_all_tools_and_levels(self, tea_adl):
        actions = set(action_space(tea_adl))
        for step_id in tea_adl.step_ids:
            assert PromptAction(step_id, ReminderLevel.MINIMAL) in actions
            assert PromptAction(step_id, ReminderLevel.SPECIFIC) in actions

    def test_deterministic_order(self, tea_adl):
        assert action_space(tea_adl) == action_space(tea_adl)
