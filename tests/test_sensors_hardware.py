"""Unit tests for the PAVENET hardware specification (Table 1)."""

from repro.core.adl import SensorType
from repro.sensors.hardware import LED_COLORS, PAVENET_SPEC


class TestSpec:
    def test_paper_values(self):
        assert PAVENET_SPEC.cpu == "Microchip PIC18LF4620"
        assert PAVENET_SPEC.ram_bytes == 4 * 1024
        assert PAVENET_SPEC.rom_bytes == 64 * 1024
        assert PAVENET_SPEC.wireless == "ChipCon CC1000"
        assert PAVENET_SPEC.eeprom_bytes == 16 * 1024
        assert PAVENET_SPEC.led_count == 4

    def test_io_lines(self):
        assert PAVENET_SPEC.io == ("UART", "GPIO", "I2C")

    def test_all_five_sensors(self):
        assert set(PAVENET_SPEC.sensors) == {
            SensorType.ACCELEROMETER,
            SensorType.PRESSURE,
            SensorType.BRIGHTNESS,
            SensorType.TEMPERATURE,
            SensorType.MOTION,
        }

    def test_table_rows_cover_every_field(self):
        rows = dict(PAVENET_SPEC.table_rows())
        assert rows["RAM"] == "4 KB"
        assert rows["ROM"] == "64 KB"
        assert "EEPROM(16 KB)" in rows["Peripherals"]
        assert "3-axis accelerometer" in rows["Sensors"]

    def test_led_colors(self):
        assert len(LED_COLORS) == PAVENET_SPEC.led_count
        assert "green" in LED_COLORS
        assert "red" in LED_COLORS
