"""Unit tests for the lossy radio medium with ARQ."""

import numpy as np
import pytest

from repro.core.config import RadioConfig
from repro.sensors.radio import BASE_STATION_UID, Frame, RadioMedium


def medium(sim, loss=0.0, retries=3, seed=0):
    return RadioMedium(
        sim,
        RadioConfig(loss_probability=loss, max_retries=retries),
        np.random.default_rng(seed),
    )


def frame(seq=1, src=5):
    return Frame(src_uid=src, dst_uid=BASE_STATION_UID, kind="usage", sequence=seq)


class TestDelivery:
    def test_lossless_delivers_after_latency(self, sim):
        radio = medium(sim)
        received = []
        radio.attach(BASE_STATION_UID, received.append)
        radio.transmit(frame())
        assert received == []  # not before latency elapses
        sim.run()
        assert len(received) == 1
        assert sim.now == pytest.approx(RadioConfig().latency)

    def test_order_preserved_lossless(self, sim):
        radio = medium(sim)
        received = []
        radio.attach(BASE_STATION_UID, lambda f: received.append(f.sequence))
        for seq in range(5):
            radio.transmit(frame(seq))
        sim.run()
        assert received == [0, 1, 2, 3, 4]

    def test_unattached_destination_counts_delivered(self, sim):
        radio = medium(sim)
        radio.transmit(frame())
        sim.run()
        assert radio.stats.delivered == 1

    def test_duplicate_attach_rejected(self, sim):
        radio = medium(sim)
        radio.attach(1, lambda f: None)
        with pytest.raises(ValueError):
            radio.attach(1, lambda f: None)

    def test_detach_then_reattach(self, sim):
        radio = medium(sim)
        radio.attach(1, lambda f: None)
        radio.detach(1)
        radio.attach(1, lambda f: None)


class TestLoss:
    def test_total_loss_drops_after_retries(self, sim):
        radio = RadioMedium(
            sim,
            RadioConfig(loss_probability=0.99, max_retries=2),
            np.random.default_rng(0),
        )
        received = []
        radio.attach(BASE_STATION_UID, received.append)
        radio.transmit(frame())
        sim.run()
        assert received == []
        assert radio.stats.dropped == 1
        assert radio.stats.attempts == 3  # initial + 2 retries

    def test_retries_recover_moderate_loss(self, sim):
        radio = medium(sim, loss=0.3, retries=8, seed=1)
        received = []
        radio.attach(BASE_STATION_UID, received.append)
        for seq in range(200):
            radio.transmit(frame(seq))
        sim.run()
        # Per-attempt success is (1-0.3)^2 = 0.49; nine attempts leave
        # ~0.2% residual loss.
        assert radio.stats.delivery_ratio > 0.97

    def test_delivery_ratio_empty_is_one(self, sim):
        assert medium(sim).stats.delivery_ratio == 1.0

    def test_loss_statistics_accumulate(self, sim):
        radio = medium(sim, loss=0.5, retries=10, seed=2)
        radio.attach(BASE_STATION_UID, lambda f: None)
        for seq in range(50):
            radio.transmit(frame(seq))
        sim.run()
        assert radio.stats.losses > 0
        assert radio.stats.retransmissions > 0
        assert radio.stats.attempts >= 50


class TestDuplicates:
    def test_lost_ack_causes_duplicate_delivery(self, sim):
        # Force the pattern: data survives, ack lost, retry delivers
        # again.  With loss=0.45 over many frames, duplicates appear.
        radio = medium(sim, loss=0.45, retries=6, seed=7)
        received = []
        radio.attach(BASE_STATION_UID, received.append)
        for seq in range(300):
            radio.transmit(frame(seq))
        sim.run()
        assert radio.stats.duplicates > 0
        assert len(received) == radio.stats.delivered
        assert radio.stats.delivered > 300  # some frames arrived twice

    def test_delivery_ratio_counts_unique_frames(self, sim):
        radio = medium(sim, loss=0.45, retries=8, seed=7)
        radio.attach(BASE_STATION_UID, lambda f: None)
        for seq in range(300):
            radio.transmit(frame(seq))
        sim.run()
        assert 0.0 < radio.stats.delivery_ratio <= 1.0
        unique = radio.stats.delivered - radio.stats.duplicates
        assert unique + radio.stats.dropped == 300

    def test_lossless_never_duplicates(self, sim):
        radio = medium(sim, loss=0.0)
        radio.attach(BASE_STATION_UID, lambda f: None)
        for seq in range(50):
            radio.transmit(frame(seq))
        sim.run()
        assert radio.stats.duplicates == 0


class TestDuplicateFilter:
    def test_fresh_then_duplicate(self):
        from repro.sensors.radio import DuplicateFilter

        dedupe = DuplicateFilter()
        assert dedupe.is_fresh(frame(1))
        assert not dedupe.is_fresh(frame(1))
        assert dedupe.duplicates_filtered == 1

    def test_sequences_tracked_per_sender_and_kind(self):
        from repro.sensors.radio import DuplicateFilter, Frame

        dedupe = DuplicateFilter()
        assert dedupe.is_fresh(frame(1, src=5))
        assert dedupe.is_fresh(frame(1, src=6))
        led = Frame(src_uid=5, dst_uid=1, kind="led", sequence=1)
        assert dedupe.is_fresh(led)

    def test_out_of_date_sequence_rejected(self):
        from repro.sensors.radio import DuplicateFilter

        dedupe = DuplicateFilter()
        assert dedupe.is_fresh(frame(3))
        assert not dedupe.is_fresh(frame(2))

    def test_reset_forgets(self):
        from repro.sensors.radio import DuplicateFilter

        dedupe = DuplicateFilter()
        dedupe.is_fresh(frame(4))
        dedupe.reset()
        assert dedupe.is_fresh(frame(1))
