"""Unit tests for parameter schedules."""

import pytest

from repro.rl.schedules import (
    ConstantSchedule,
    ExponentialDecay,
    HarmonicDecay,
    LinearDecay,
)


class TestConstant:
    def test_value_everywhere(self):
        schedule = ConstantSchedule(0.3)
        assert schedule.value(0) == 0.3
        assert schedule.value(10_000) == 0.3

    def test_callable(self):
        assert ConstantSchedule(0.5)(3) == 0.5


class TestExponential:
    def test_decay(self):
        schedule = ExponentialDecay(1.0, 0.5)
        assert schedule.value(0) == 1.0
        assert schedule.value(2) == 0.25

    def test_minimum_floor(self):
        schedule = ExponentialDecay(1.0, 0.5, minimum=0.1)
        assert schedule.value(100) == 0.1

    def test_decay_bounds(self):
        with pytest.raises(ValueError):
            ExponentialDecay(1.0, 0.0)
        with pytest.raises(ValueError):
            ExponentialDecay(1.0, 1.5)

    def test_decay_of_one_is_constant(self):
        schedule = ExponentialDecay(0.7, 1.0)
        assert schedule.value(500) == 0.7


class TestLinear:
    def test_endpoints(self):
        schedule = LinearDecay(1.0, 0.0, span=10)
        assert schedule.value(0) == 1.0
        assert schedule.value(10) == 0.0
        assert schedule.value(50) == 0.0

    def test_midpoint(self):
        schedule = LinearDecay(1.0, 0.0, span=10)
        assert schedule.value(5) == pytest.approx(0.5)

    def test_rising_ramp_allowed(self):
        schedule = LinearDecay(0.0, 1.0, span=4)
        assert schedule.value(2) == pytest.approx(0.5)

    def test_span_positive(self):
        with pytest.raises(ValueError):
            LinearDecay(1.0, 0.0, span=0)


class TestHarmonic:
    def test_initial(self):
        assert HarmonicDecay(1.0, half_life=10.0).value(0) == 1.0

    def test_half_at_half_life(self):
        assert HarmonicDecay(1.0, half_life=10.0).value(10) == pytest.approx(0.5)

    def test_robbins_monro_shape(self):
        schedule = HarmonicDecay(1.0, half_life=1.0)
        values = [schedule.value(t) for t in range(1, 1000)]
        assert sum(values) > 5.0  # diverging sum (log growth)
        assert sum(v * v for v in values) < 3.0  # converging square sum

    def test_half_life_positive(self):
        with pytest.raises(ValueError):
            HarmonicDecay(1.0, half_life=0.0)
