"""Unit & integration tests for online adaptation ("learning all the while")."""

import numpy as np
import pytest

from repro.core.adl import IDLE_STEP_ID, Routine
from repro.core.bus import EventBus
from repro.core.config import CoReDAConfig
from repro.core.errors import CoReDAError
from repro.core.events import StepEvent
from repro.core.system import CoReDA
from repro.planning.online import OnlineAdaptation
from repro.planning.state import episode_states
from repro.planning.trainer import RoutineTrainer


def trained_learner(adl, routine, seed=0):
    trainer = RoutineTrainer(adl, rng=np.random.default_rng(seed))
    result = trainer.train([list(routine.step_ids)] * 120, routine=routine)
    return result.learner


def publish_episode(bus, step_ids):
    previous = IDLE_STEP_ID
    for step_id in step_ids:
        bus.publish(StepEvent(time=0.0, step_id=step_id, previous_step_id=previous))
        previous = step_id


class TestEpisodeCollection:
    def test_learns_on_terminal_step(self, tea_adl):
        learner = trained_learner(tea_adl, tea_adl.canonical_routine())
        adaptation = OnlineAdaptation(tea_adl, learner)
        bus = EventBus()
        adaptation.attach(bus)
        publish_episode(bus, [1, 2, 3, 4])
        assert adaptation.episodes_learned == 1

    def test_idle_steps_ignored(self, tea_adl):
        learner = trained_learner(tea_adl, tea_adl.canonical_routine())
        adaptation = OnlineAdaptation(tea_adl, learner)
        bus = EventBus()
        adaptation.attach(bus)
        publish_episode(bus, [1, IDLE_STEP_ID, 2, 3, IDLE_STEP_ID, 4])
        assert adaptation.episodes_learned == 1
        assert adaptation.transitions_seen == 3

    def test_single_step_episode_not_learned(self, tea_adl):
        learner = trained_learner(tea_adl, tea_adl.canonical_routine())
        adaptation = OnlineAdaptation(tea_adl, learner)
        bus = EventBus()
        adaptation.attach(bus)
        publish_episode(bus, [4])  # terminal immediately
        assert adaptation.episodes_learned == 0

    def test_drift_window_validation(self, tea_adl):
        learner = trained_learner(tea_adl, tea_adl.canonical_routine())
        with pytest.raises(ValueError):
            OnlineAdaptation(tea_adl, learner, drift_window=0)


class TestAdaptationToNewRoutine:
    def test_relearns_changed_routine(self, tea_adl):
        routine_a = tea_adl.canonical_routine()          # 1,2,3,4
        routine_b = Routine(tea_adl, [1, 3, 2, 4])       # the new habit
        learner = trained_learner(tea_adl, routine_a)
        adaptation = OnlineAdaptation(
            tea_adl, learner, rng=np.random.default_rng(1)
        )
        bus = EventBus()
        adaptation.attach(bus)
        for _ in range(25):
            publish_episode(bus, list(routine_b.step_ids))
        states = episode_states(list(routine_b.step_ids))
        for index in range(len(states) - 1):
            greedy = learner.greedy_action(states[index], adaptation.actions)
            assert greedy.tool_id == states[index + 1].current

    def test_drift_signal_drops_then_recovers(self, tea_adl):
        routine_a = tea_adl.canonical_routine()
        routine_b = Routine(tea_adl, [1, 3, 2, 4])
        learner = trained_learner(tea_adl, routine_a)
        adaptation = OnlineAdaptation(
            tea_adl, learner, rng=np.random.default_rng(1), drift_window=6
        )
        bus = EventBus()
        adaptation.attach(bus)
        publish_episode(bus, list(routine_a.step_ids))
        assert adaptation.recent_accuracy == 1.0
        # Switch routines: the pre-learning accuracy dips...
        publish_episode(bus, list(routine_b.step_ids))
        publish_episode(bus, list(routine_b.step_ids))
        assert adaptation.recent_accuracy < 1.0
        # ...and recovers once the new routine has been learned.
        for _ in range(25):
            publish_episode(bus, list(routine_b.step_ids))
        assert adaptation.recent_accuracy == 1.0

    def test_accuracy_none_before_data(self, tea_adl):
        learner = trained_learner(tea_adl, tea_adl.canonical_routine())
        adaptation = OnlineAdaptation(tea_adl, learner)
        assert adaptation.recent_accuracy is None


class TestSystemIntegration:
    def test_requires_training(self, tea_definition):
        system = CoReDA.build(tea_definition, CoReDAConfig(seed=0))
        with pytest.raises(CoReDAError):
            system.enable_online_adaptation()

    def test_live_adaptation_through_full_system(self, tea_definition):
        from repro.adls.tea_making import POT, TEACUP

        system = CoReDA.build(tea_definition, CoReDAConfig(seed=13))
        system.train_offline(episodes=120)
        adaptation = system.enable_online_adaptation()
        new_routine = Routine(tea_definition.adl, [1, 3, 2, 4])
        reliable = {POT.tool_id: 6.0, TEACUP.tool_id: 5.0}
        for index in range(12):
            resident = system.create_resident(
                routine=new_routine,
                handling_overrides=reliable,
                name=f"adaptive-{index}",
            )
            outcome = system.run_episode(resident, horizon=3600.0)
            assert outcome.completed
        assert adaptation.episodes_learned >= 10
        # The deployed predictor now tracks the new routine.
        assert system.predictor.predict_next_tool(1, 3) == 2
