"""Unit tests for the EEPROM ring log."""

import pytest

from repro.sensors.eeprom import RECORD_SIZE, EepromLog, EepromRecord


def record(seq):
    return EepromRecord(timestamp=float(seq), node_uid=1, sequence=seq)


class TestCapacity:
    def test_capacity_from_bytes(self):
        log = EepromLog(capacity_bytes=10 * RECORD_SIZE)
        assert log.capacity_records == 10

    def test_default_is_pavenet_16kb(self):
        log = EepromLog()
        assert log.capacity_records == (16 * 1024) // RECORD_SIZE

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            EepromLog(capacity_bytes=RECORD_SIZE - 1)


class TestRingSemantics:
    def test_append_and_read_back(self):
        log = EepromLog(capacity_bytes=4 * RECORD_SIZE)
        for seq in range(3):
            log.append(record(seq))
        assert [r.sequence for r in log.records()] == [0, 1, 2]
        assert len(log) == 3

    def test_oldest_evicted_when_full(self):
        log = EepromLog(capacity_bytes=3 * RECORD_SIZE)
        for seq in range(5):
            log.append(record(seq))
        assert [r.sequence for r in log.records()] == [2, 3, 4]
        assert log.overwrites == 2
        assert log.writes == 5

    def test_used_bytes(self):
        log = EepromLog(capacity_bytes=10 * RECORD_SIZE)
        log.append(record(0))
        log.append(record(1))
        assert log.used_bytes() == 2 * RECORD_SIZE
