"""SIM003 fixtures: kernel Event free-list ownership.

Once ``_release(free, event)`` (or ``event.recycle()``) runs, the
object belongs to the free list: the very next ``schedule`` may hand
it to an unrelated timeout.  The rule enforces the two halves of the
PR 7 contract -- recycle *before* the callback runs, and never touch
the event after recycle -- while staying terminator-aware so the
kernel's real drain loops (``_release`` + ``continue``) and dispatch
idiom (bind callback, release, invoke) are clean.
"""

import textwrap

from repro.analysis import lint_source

HEADER = "from repro.sim.kernel import _release\n"


def sim3(source, path="src/repro/sim/fixture.py"):
    found = lint_source(
        HEADER + textwrap.dedent(source), path, ["SIM003"]
    )
    return [f for f in found if not f.suppressed]


class TestUseAfterRecycle:
    def test_read_after_release_flagged(self):
        found = sim3(
            """
            def drain(free, event):
                _release(free, event)
                return event.time
            """
        )
        assert [f.rule for f in found] == ["SIM003"]
        assert "after" in found[0].message

    def test_double_release_flagged(self):
        found = sim3(
            """
            def drain(free, event):
                _release(free, event)
                _release(free, event)
            """
        )
        assert [f.rule for f in found] == ["SIM003"]

    def test_release_then_continue_is_clean(self):
        # The queue-backend drain idiom: recycle cancelled heads and
        # continue; the terminator makes later statements unreachable.
        found = sim3(
            """
            def pop_due(free, heap, horizon):
                while heap:
                    event = heap.pop()
                    if event.cancelled:
                        _release(free, event)
                        continue
                    if event.time > horizon:
                        return None
                    return event
                return None
            """
        )
        assert found == []

    def test_release_then_return_is_clean(self):
        found = sim3(
            """
            def finish(free, event):
                _release(free, event)
                return None
            """
        )
        assert found == []

    def test_rebind_is_a_barrier(self):
        found = sim3(
            """
            def recycle_and_refill(free, event, queue):
                _release(free, event)
                event = queue.pop()
                return event.time
            """
        )
        assert found == []

    def test_use_after_release_at_outer_level_flagged(self):
        # Release inside a conditional, use after the conditional:
        # reachable by fall-through, so it is flagged.
        found = sim3(
            """
            def dispatch(free, event):
                if event.reusable:
                    _release(free, event)
                return event.time
            """
        )
        assert [f.rule for f in found] == ["SIM003"]


class TestRecycleBeforeCallback:
    def test_callback_invoked_before_release_flagged(self):
        found = sim3(
            """
            def step(free, event):
                event.callback()
                _release(free, event)
            """
        )
        assert [f.rule for f in found] == ["SIM003"]
        assert "before" in found[0].message

    def test_bound_callback_invoked_before_release_flagged(self):
        found = sim3(
            """
            def step(free, event):
                callback = event.callback
                callback()
                _release(free, event)
            """
        )
        assert [f.rule for f in found] == ["SIM003"]

    def test_kernel_dispatch_idiom_is_clean(self):
        # Simulator.step()/run_until(): bind the callback, recycle,
        # then invoke the bound local.
        found = sim3(
            """
            def step(free, event):
                callback = event.callback
                if event.reusable:
                    _release(free, event)
                callback()
                return True
            """
        )
        assert found == []

    def test_callback_without_release_not_checked(self):
        # Non-reusable dispatch invokes the callback directly and
        # never releases; the contract does not apply.
        found = sim3(
            """
            def fire(event):
                event.callback()
            """
        )
        assert found == []


class TestScopingAndSpellings:
    def test_recycle_method_spelling_checked(self):
        found = sim3(
            """
            def drop(event):
                event.recycle()
                return event.time
            """
        )
        assert [f.rule for f in found] == ["SIM003"]

    def test_non_sim_module_not_checked(self):
        source = (
            "def drain(free, event):\n"
            "    _release(free, event)\n"
            "    return event.time\n"
        )
        found = lint_source(
            source, "src/repro/planning/fixture.py", ["SIM003"]
        )
        assert found == []

    def test_sim_directory_checked_without_import(self):
        source = (
            "def drain(free, event):\n"
            "    _release(free, event)\n"
            "    return event.time\n"
        )
        found = lint_source(source, "src/repro/sim/fixture.py", ["SIM003"])
        assert [f.rule for f in found] == ["SIM003"]

    def test_suppression_applies(self):
        found = lint_source(
            HEADER
            + textwrap.dedent(
                """
                def drain(free, event):
                    _release(free, event)
                    return event.time  # repro: allow[SIM003] fixture
                """
            ),
            "src/repro/sim/fixture.py",
            ["SIM003"],
        )
        assert [f.suppressed for f in found] == [True]
