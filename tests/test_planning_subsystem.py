"""Unit tests for the online planning subsystem."""

import pytest

from repro.core.adl import IDLE_STEP_ID, ReminderLevel
from repro.core.bus import EventBus
from repro.core.events import (
    EpisodeCompletedEvent,
    PraiseEvent,
    PromptRequestEvent,
    StepEvent,
    TriggerReason,
)
from repro.planning.action import PromptAction
from repro.planning.subsystem import PlanningSubsystem


class RoutinePredictor:
    """Deterministic predictor following the canonical routine."""

    def __init__(self, routine):
        self.routine = routine

    def predict(self, state):
        next_step = self.routine.next_step_id(state.current)
        return PromptAction(next_step, ReminderLevel.MINIMAL)


@pytest.fixture
def harness(sim, tea_adl):
    bus = EventBus()
    planning = PlanningSubsystem(
        sim=sim,
        adl=tea_adl,
        bus=bus,
        predictor=RoutinePredictor(tea_adl.canonical_routine()),
        stall_timeout_for=lambda step_id: 10.0,
    )
    prompts, praises, completions = [], [], []
    bus.subscribe(PromptRequestEvent, prompts.append)
    bus.subscribe(PraiseEvent, praises.append)
    bus.subscribe(EpisodeCompletedEvent, completions.append)

    def step(step_id, previous=None):
        bus.publish(
            StepEvent(time=sim.now, step_id=step_id, previous_step_id=previous or 0)
        )

    return sim, planning, prompts, praises, completions, step


class TestHappyPath:
    def test_correct_episode_no_prompts(self, harness):
        sim, planning, prompts, praises, completions, step = harness
        for step_id in (1, 2, 3, 4):
            step(step_id)
            sim.run_until(sim.now + 3.0)
        assert prompts == []
        assert praises == []
        assert len(completions) == 1
        assert planning.episodes_completed == 1

    def test_completion_event_contents(self, harness):
        sim, planning, prompts, praises, completions, step = harness
        for step_id in (1, 2, 3, 4):
            step(step_id)
        completed = completions[0]
        assert completed.adl_name == "tea-making"
        assert completed.steps_taken == 4
        assert completed.reminders_issued == 0

    def test_state_resets_after_completion(self, harness):
        sim, planning, prompts, praises, completions, step = harness
        for step_id in (1, 2, 3, 4):
            step(step_id)
        for step_id in (1, 2, 3, 4):
            step(step_id)
        assert len(completions) == 2


class TestWrongTool:
    def test_wrong_tool_prompts_expected(self, harness):
        sim, planning, prompts, praises, completions, step = harness
        step(1)
        step(4)  # should have been 2
        assert len(prompts) == 1
        prompt = prompts[0]
        assert prompt.reason is TriggerReason.WRONG_TOOL
        assert prompt.tool_id == 2
        assert prompt.wrong_tool_id == 4

    def test_recovery_after_wrong_tool_earns_praise(self, harness):
        sim, planning, prompts, praises, completions, step = harness
        step(1)
        step(4)
        step(2)  # follows the prompt
        assert len(praises) == 1
        assert praises[0].step_id == 2

    def test_expectation_anchored_during_error(self, harness):
        sim, planning, prompts, praises, completions, step = harness
        step(1)
        step(4)
        step(3)  # still wrong; expectation remains tool 2
        assert [p.tool_id for p in prompts] == [2, 2]


class TestStall:
    def test_stall_timer_prompts(self, harness):
        sim, planning, prompts, praises, completions, step = harness
        step(1)
        sim.run_until(11.0)
        assert len(prompts) == 1
        assert prompts[0].reason is TriggerReason.STALL
        assert prompts[0].tool_id == 2

    def test_stall_prompt_repeats_until_answered(self, harness):
        sim, planning, prompts, praises, completions, step = harness
        step(1)
        sim.run_until(35.0)
        assert len(prompts) == 3

    def test_progress_disarms_stall_timer(self, harness):
        sim, planning, prompts, praises, completions, step = harness
        step(1)
        sim.run_until(5.0)
        step(2)
        sim.run_until(9.0)  # only 4 s in step 2
        assert prompts == []

    def test_idle_event_triggers_stall_prompt(self, harness):
        sim, planning, prompts, praises, completions, step = harness
        step(1)
        step(IDLE_STEP_ID)
        assert len(prompts) == 1
        assert prompts[0].reason is TriggerReason.STALL

    def test_following_stall_prompt_earns_praise(self, harness):
        sim, planning, prompts, praises, completions, step = harness
        step(1)
        sim.run_until(11.0)
        step(2)
        assert len(praises) == 1


class TestFirstStep:
    def test_no_prompt_before_first_step(self, harness):
        sim, planning, prompts, praises, completions, step = harness
        sim.run_until(100.0)
        assert prompts == []

    def test_idle_before_episode_ignored(self, harness):
        sim, planning, prompts, praises, completions, step = harness
        step(IDLE_STEP_ID)
        assert prompts == []

    def test_prediction_starts_at_first_step(self, harness):
        sim, planning, prompts, praises, completions, step = harness
        step(1)
        assert planning.prompts_requested == 0


class TestReset:
    def test_reset_episode_clears_state(self, harness):
        sim, planning, prompts, praises, completions, step = harness
        step(1)
        planning.reset_episode()
        sim.run_until(100.0)
        assert prompts == []
