"""Unit tests for the statistics helpers."""

import math

import pytest

from repro.core.metrics import (
    mean,
    proportion,
    rolling_mean,
    sample_sd,
    wilson_interval,
)


class TestProportion:
    def test_basic(self):
        assert proportion(3, 4) == 0.75

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError):
            proportion(0, 0)

    def test_successes_bounds(self):
        with pytest.raises(ValueError):
            proportion(5, 4)
        with pytest.raises(ValueError):
            proportion(-1, 4)


class TestMeanSd:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])

    def test_sample_sd(self):
        assert sample_sd([2.0, 4.0]) == pytest.approx(math.sqrt(2))

    def test_sample_sd_single_value(self):
        assert sample_sd([5.0]) == 0.0


class TestRollingMean:
    def test_window_prefix(self):
        assert rolling_mean([1, 2, 3, 4], 2) == [1.0, 1.5, 2.5, 3.5]

    def test_window_larger_than_series(self):
        assert rolling_mean([2, 4], 10) == [2.0, 3.0]

    def test_bad_window(self):
        with pytest.raises(ValueError):
            rolling_mean([1], 0)


class TestWilson:
    def test_interval_contains_proportion(self):
        low, high = wilson_interval(36, 40)
        assert low < 0.9 < high

    def test_bounds_clamped(self):
        low, high = wilson_interval(40, 40)
        assert high == 1.0
        low, high = wilson_interval(0, 40)
        assert low == 0.0

    def test_wider_for_fewer_trials(self):
        small = wilson_interval(9, 10)
        large = wilson_interval(90, 100)
        assert (small[1] - small[0]) > (large[1] - large[0])

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError):
            wilson_interval(0, 0)
