"""Legacy setup shim.

Kept so ``pip install -e .`` works on minimal offline environments
(no ``wheel`` package, old setuptools).  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
